// Package snapshot is the versioned binary container used to
// checkpoint and restore simulator state (DESIGN.md §14).
//
// The format is deliberately minimal and fully deterministic: a fixed
// magic string and format version, followed by tagged sections of
// little-endian / varint-encoded primitives, terminated by a CRC32
// trailer over everything that precedes it. The same state always
// serialises to the same bytes, so snapshot equality is byte equality —
// the property the restore-vs-rerun bit-identity tests lean on.
//
// The encoding layer knows nothing about simulator structures; it
// provides primitives (Uvarint, Varint, U64, Bool, String) plus section
// tags that catch reader/writer drift early with a precise error
// instead of garbage decoding. Readers are sticky-error: after the
// first failure every subsequent read is a cheap no-op returning zero,
// so decode loops need only one error check at the end. Hostile or
// truncated input must surface as an error, never a panic: String and
// the caller-side count validations bound every allocation.
package snapshot

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a flatnet snapshot stream.
const Magic = "FNETSNAP"

// Version is the current format version. Readers reject snapshots
// written by a different version: state layout is tied to the simulator
// build, and silently misreading a stale checkpoint is worse than
// asking the caller to regenerate it. Version 2 added the workload
// section (per-source arrival-process state) and dropped the per-source
// burst bit.
const Version = 2

// maxStringLen bounds String allocations against hostile length
// prefixes. Snapshot strings are short identifiers (algorithm names,
// pattern names), never bulk data.
const maxStringLen = 1 << 16

// maxBytesLen bounds Bytes allocations. Byte blobs carry per-node
// workload state (a few bytes per terminal), so 16 MiB covers networks
// far beyond the simulator's practical scale.
const maxBytesLen = 1 << 24

// Writer serialises primitives to an underlying stream while
// accumulating the CRC32 trailer. Errors are sticky; check Close.
type Writer struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [10]byte
}

// NewWriter starts a snapshot stream: magic then format version.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: bufio.NewWriter(w)}
	sw.raw([]byte(Magic))
	sw.Uvarint(Version)
	return sw
}

func (w *Writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	_, w.err = w.w.Write(b)
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := 0
	for v >= 0x80 {
		w.buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	w.buf[n] = byte(v)
	w.raw(w.buf[:n+1])
}

// Varint writes a signed varint (zig-zag encoded).
func (w *Writer) Varint(v int64) {
	w.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// U64 writes a fixed-width little-endian uint64 (RNG state words,
// where varint encoding would obscure the fixed layout).
func (w *Writer) U64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(v >> (8 * i))
	}
	w.raw(w.buf[:8])
}

// Bool writes a single 0/1 byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf[0] = b
	w.raw(w.buf[:1])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	if len(s) > maxStringLen {
		if w.err == nil {
			w.err = fmt.Errorf("snapshot: string of %d bytes exceeds limit %d", len(s), maxStringLen)
		}
		return
	}
	w.Uvarint(uint64(len(s)))
	w.raw([]byte(s))
}

// Bytes writes a length-prefixed byte blob (workload state, where the
// payload is opaque to the container).
func (w *Writer) Bytes(b []byte) {
	if len(b) > maxBytesLen {
		if w.err == nil {
			w.err = fmt.Errorf("snapshot: byte blob of %d bytes exceeds limit %d", len(b), maxBytesLen)
		}
		return
	}
	w.Uvarint(uint64(len(b)))
	w.raw(b)
}

// Section writes a section tag marking the start of a logical group.
func (w *Writer) Section(tag uint64) {
	w.Uvarint(tag)
}

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the CRC32 trailer and flushes. It does not close the
// underlying stream.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var tail [4]byte
	for i := 0; i < 4; i++ {
		tail[i] = byte(w.crc >> (8 * i))
	}
	if _, err := w.w.Write(tail[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reader decodes a snapshot stream written by Writer. Errors are
// sticky: after the first failure every read returns the zero value,
// and Err / Finish report what went wrong.
type Reader struct {
	r       *bufio.Reader
	crc     uint32
	err     error
	version uint64
}

// NewReader validates the magic and format version and positions the
// reader at the first section.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReader(r)}
	var magic [len(Magic)]byte
	sr.full(magic[:])
	if sr.err == nil && string(magic[:]) != Magic {
		sr.err = errors.New("snapshot: bad magic (not a flatnet snapshot)")
	}
	sr.version = sr.Uvarint()
	if sr.err == nil && sr.version != Version {
		sr.err = fmt.Errorf("snapshot: format version %d, this build reads version %d", sr.version, Version)
	}
	if sr.err != nil {
		return nil, sr.err
	}
	return sr, nil
}

// Version reports the stream's format version.
func (r *Reader) Version() uint64 { return r.version }

func (r *Reader) full(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = errors.New("snapshot: truncated stream")
		}
		r.err = err
		return
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, b)
}

func (r *Reader) byte() byte {
	var b [1]byte
	r.full(b[:])
	return b[0]
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		b := r.byte()
		if r.err != nil {
			return 0
		}
		if shift == 63 && b > 1 {
			r.err = errors.New("snapshot: varint overflows uint64")
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			r.err = errors.New("snapshot: varint too long")
			return 0
		}
	}
}

// Varint reads a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	var b [8]byte
	r.full(b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Bool reads a 0/1 byte; any other value is a format error.
func (r *Reader) Bool() bool {
	b := r.byte()
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("snapshot: invalid bool byte %#x", b)
	}
	return b == 1
}

// String reads a length-prefixed string, bounding the allocation.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("snapshot: string length %d exceeds limit %d", n, maxStringLen)
		return ""
	}
	b := make([]byte, n)
	r.full(b)
	if r.err != nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte blob, bounding the allocation.
// A zero-length blob decodes as nil.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxBytesLen {
		r.err = fmt.Errorf("snapshot: byte blob length %d exceeds limit %d", n, maxBytesLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.full(b)
	if r.err != nil {
		return nil
	}
	return b
}

// Section consumes a section tag and errors unless it matches want.
func (r *Reader) Section(want uint64) {
	got := r.Uvarint()
	if r.err == nil && got != want {
		r.err = fmt.Errorf("snapshot: expected section %d, found %d (corrupt or mismatched stream)", want, got)
	}
}

// Count reads a uvarint length prefix and validates it against max so
// hostile streams cannot force huge allocations or out-of-range
// indices. Use for every slice length and index read from the stream.
func (r *Reader) Count(max int, what string) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if max < 0 || n > uint64(max) {
		r.err = fmt.Errorf("snapshot: %s count %d exceeds limit %d", what, n, max)
		return 0
	}
	return int(n)
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Finish validates the CRC32 trailer. Call after the last section has
// been decoded; a mismatch means the stream was corrupted in flight.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc // trailer itself is not covered by the CRC
	var tail [4]byte
	if _, err := io.ReadFull(r.r, tail[:]); err != nil {
		r.err = errors.New("snapshot: truncated stream (missing CRC trailer)")
		return r.err
	}
	var got uint32
	for i := 0; i < 4; i++ {
		got |= uint32(tail[i]) << (8 * i)
	}
	if got != want {
		r.err = fmt.Errorf("snapshot: CRC mismatch (stream %#08x, computed %#08x)", got, want)
		return r.err
	}
	return nil
}
