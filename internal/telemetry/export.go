package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// wireEvent is the serialized form of a FlitEvent, shared by the JSONL
// exporter and the Chrome-trace args payload so both round-trip every
// field.
type wireEvent struct {
	Cycle  int64  `json:"cycle"`
	Kind   string `json:"kind"`
	Packet int64  `json:"packet"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Router int    `json:"router"`
	Port   int    `json:"port"`
	VC     int    `json:"vc"`
	Tail   bool   `json:"tail,omitempty"`
}

func toWire(ev FlitEvent) wireEvent {
	return wireEvent{
		Cycle: ev.Cycle, Kind: ev.Kind.String(), Packet: ev.Packet,
		Src: ev.Src, Dst: ev.Dst, Router: ev.Router, Port: ev.Port,
		VC: ev.VC, Tail: ev.Tail,
	}
}

func fromWire(w wireEvent) (FlitEvent, error) {
	k, err := ParseEventKind(w.Kind)
	if err != nil {
		return FlitEvent{}, err
	}
	return FlitEvent{
		Cycle: w.Cycle, Kind: k, Packet: w.Packet,
		Src: w.Src, Dst: w.Dst, Router: w.Router, Port: w.Port,
		VC: w.VC, Tail: w.Tail,
	}, nil
}

// WriteJSONL writes one JSON object per event, newline-delimited — the
// format for offline analysis with line-oriented tools.
func WriteJSONL(w io.Writer, events []FlitEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toWire(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL inverts WriteJSONL.
func ReadJSONL(r io.Reader) ([]FlitEvent, error) {
	var out []FlitEvent
	dec := json.NewDecoder(r)
	for {
		var w wireEvent
		if err := dec.Decode(&w); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: jsonl event %d: %w", len(out), err)
		}
		ev, err := fromWire(w)
		if err != nil {
			return nil, fmt.Errorf("telemetry: jsonl event %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

// Chrome trace-event format (the chrome://tracing / Perfetto JSON
// schema): an object with a traceEvents array. Each flit event becomes a
// complete ("X") slice one cycle long, with the packet as the process
// row (pid) and the router as the thread row (tid), so opening the file
// in a trace viewer shows each packet's journey as a swimlane of
// pipeline stages per router. A metadata ("M") event names each packet
// row. The full FlitEvent rides in args, making the export lossless.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat,omitempty"`
	Ph   string     `json:"ph"`
	TS   int64      `json:"ts"`
	Dur  int64      `json:"dur,omitempty"`
	PID  int64      `json:"pid"`
	TID  int64      `json:"tid"`
	Args *wireEvent `json:"args,omitempty"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int64          `json:"pid"`
	Args chromeMetaArgs `json:"args"`
}

type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace writes the events as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Cycles map
// to microseconds (1 cycle = 1 us) since the format counts wall time.
func WriteChromeTrace(w io.Writer, events []FlitEvent) error {
	var raw []json.RawMessage
	seen := make(map[int64]bool)
	for _, ev := range events {
		if !seen[ev.Packet] {
			seen[ev.Packet] = true
			m := chromeMeta{
				Name: "process_name", Ph: "M", PID: ev.Packet,
				Args: chromeMetaArgs{Name: fmt.Sprintf("packet %d (%d->%d)", ev.Packet, ev.Src, ev.Dst)},
			}
			b, err := json.Marshal(m)
			if err != nil {
				return err
			}
			raw = append(raw, b)
		}
		we := toWire(ev)
		ce := chromeEvent{
			Name: ev.Kind.String(), Cat: "flit", Ph: "X",
			TS: ev.Cycle, Dur: 1,
			PID: ev.Packet, TID: int64(ev.Router),
			Args: &we,
		}
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		raw = append(raw, b)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: raw, DisplayTimeUnit: "ms"})
}

// ReadChromeTrace inverts WriteChromeTrace: it reconstructs the flit
// events from the args payloads, skipping metadata events, so a trace
// round-trips losslessly through the Chrome format.
func ReadChromeTrace(r io.Reader) ([]FlitEvent, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	var out []FlitEvent
	for i, msg := range f.TraceEvents {
		var ce chromeEvent
		if err := json.Unmarshal(msg, &ce); err != nil {
			return nil, fmt.Errorf("telemetry: chrome trace event %d: %w", i, err)
		}
		if ce.Ph != "X" || ce.Args == nil {
			continue // metadata or foreign event
		}
		ev, err := fromWire(*ce.Args)
		if err != nil {
			return nil, fmt.Errorf("telemetry: chrome trace event %d: %w", i, err)
		}
		out = append(out, ev)
	}
	return out, nil
}
