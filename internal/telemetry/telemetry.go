// Package telemetry is the observability layer of the reproduction: a
// typed metrics registry publishable through expvar, a ring-buffered
// flit event tracer with Chrome-trace and JSONL exporters, and a live
// HTTP metrics endpoint (expvar + pprof) that the long-running commands
// opt into with -listen.
//
// The design constraint throughout is zero overhead when off: the
// simulator's pipeline hooks are nil-checked pointers (no probes or
// tracer attached means no work beyond the check), counters are plain
// atomics, and nothing in this package is imported into a hot loop —
// the simulator pushes into telemetry structures, never the reverse.
package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter, safe for concurrent use. The
// zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named set of metrics: counters owned by the registry and
// gauges computed on demand. A Registry marshals to one JSON object, so
// publishing it as a single expvar exposes every metric under
// /debug/vars without touching the global expvar namespace per metric.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	names    []string // registration order, for stable snapshots
	counters map[string]*Counter
	gauges   map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() any),
	}
}

// Counter returns the named counter, creating and registering it on
// first use. Reusing a gauge's name panics: the registry is typed, and a
// name means one thing.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge", name))
	}
	c := &Counter{}
	r.counters[name] = c
	r.names = append(r.names, name)
	return c
}

// Gauge registers a computed metric: fn is called at snapshot time and
// must return a JSON-marshalable value. Re-registering a name replaces
// its function; reusing a counter's name panics.
func (r *Registry) Gauge(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; !ok {
		r.names = append(r.names, name)
	}
	r.gauges[name] = fn
}

// Snapshot returns the current value of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]func() any, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	r.mu.Unlock()
	// Gauge functions run outside the lock: they may themselves take
	// locks (e.g. an engine snapshot) and must not deadlock against
	// concurrent registration.
	out := make(map[string]any, len(names))
	for _, name := range names {
		if c, ok := counters[name]; ok {
			out[name] = c.Value()
		} else if fn, ok := gauges[name]; ok {
			out[name] = fn()
		}
	}
	return out
}

// String renders the snapshot as JSON; it makes Registry an expvar.Var.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return fmt.Sprintf("{%q:%q}", "telemetry_error", err.Error())
	}
	return string(b)
}

// Publish registers the whole registry as one expvar under the given
// name, so an expvar endpoint serves it at /debug/vars. The expvar
// namespace is process-global and write-once: publishing the same
// registry twice is a no-op, while a name already taken by anything else
// is reported as an error rather than panicking (expvar's behaviour).
func (r *Registry) Publish(name string) error {
	if existing := expvar.Get(name); existing != nil {
		if v, ok := existing.(*Registry); ok && v == r {
			return nil
		}
		return fmt.Errorf("telemetry: expvar %q is already published", name)
	}
	expvar.Publish(name, r)
	return nil
}
