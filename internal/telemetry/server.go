package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewMux returns an http.ServeMux serving the standard debug surface:
// /debug/vars (expvar, including every published Registry) and
// /debug/pprof (CPU/heap/goroutine profiles). Routes are registered on a
// fresh mux rather than http.DefaultServeMux so importing this package
// never mutates global HTTP state.
func NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live metrics endpoint: an HTTP listener serving NewMux in
// a background goroutine for the lifetime of a run.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (e.g. "localhost:6060", or ":0" for an
// OS-assigned port) and serves the debug surface until Close. It
// returns once the listener is bound, so Addr is immediately valid.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewMux(),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln) //nolint:errcheck // always returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:6060".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
