package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("jobs") != c {
		t.Fatal("Counter not idempotent per name")
	}
	r.Gauge("depth", func() any { return 7 })
	snap := r.Snapshot()
	if snap["jobs"] != int64(5) {
		t.Errorf("snapshot jobs = %v, want 5", snap["jobs"])
	}
	if snap["depth"] != 7 {
		t.Errorf("snapshot depth = %v, want 7", snap["depth"])
	}
	// Gauge replacement is allowed.
	r.Gauge("depth", func() any { return 9 })
	if got := r.Snapshot()["depth"]; got != 9 {
		t.Errorf("replaced gauge = %v, want 9", got)
	}
	// String renders valid JSON with both metrics.
	var decoded map[string]any
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String is not JSON: %v", err)
	}
	if decoded["jobs"] != float64(5) || decoded["depth"] != float64(9) {
		t.Errorf("String JSON = %v", decoded)
	}
}

func TestRegistryTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	assertPanics(t, "gauge over counter", func() { r.Gauge("x", func() any { return 0 }) })
	r.Gauge("y", func() any { return 0 })
	assertPanics(t, "counter over gauge", func() { _ = r.Counter("y") })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestRegistryPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	if err := r.Publish("telemetry_test_pub"); err != nil {
		t.Fatal(err)
	}
	// Same registry again: no-op.
	if err := r.Publish("telemetry_test_pub"); err != nil {
		t.Fatalf("re-publishing same registry: %v", err)
	}
	// A different registry under the same name: error, not panic.
	if err := NewRegistry().Publish("telemetry_test_pub"); err == nil {
		t.Fatal("conflicting publish accepted")
	}
}

func testEvents(n int) []FlitEvent {
	out := make([]FlitEvent, n)
	for i := range out {
		out[i] = FlitEvent{
			Cycle: int64(i), Kind: EventKind(i % int(numEventKinds)),
			Packet: int64(i / 5), Src: i % 3, Dst: (i + 1) % 7,
			Router: i % 4, Port: i % 6, VC: i%2 - 1, Tail: i%5 == 4,
		}
	}
	return out
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	evs := testEvents(6)
	for _, ev := range evs {
		tr.Record(ev)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	if got := tr.Events(); !reflect.DeepEqual(got, evs[2:]) {
		t.Errorf("Events = %+v, want last 4", got)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestTracerPacketFilter(t *testing.T) {
	tr := NewTracer(64)
	tr.FilterPackets(1)
	for _, ev := range testEvents(20) { // packets 0..3
		tr.Record(ev)
	}
	if tr.Dropped() != 0 {
		t.Errorf("filtered-out events counted as dropped: %d", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5 (packet 1 only)", len(evs))
	}
	for _, ev := range evs {
		if ev.Packet != 1 {
			t.Errorf("event for packet %d leaked through filter", ev.Packet)
		}
	}
	if got := tr.PacketEvents(1); !reflect.DeepEqual(got, evs) {
		t.Error("PacketEvents(1) disagrees with Events()")
	}
	tr.FilterPackets() // remove filter
	tr.Record(FlitEvent{Packet: 99})
	if got := len(tr.PacketEvents(99)); got != 1 {
		t.Errorf("after filter removal packet 99 events = %d, want 1", got)
	}
}

func TestEventKindRoundTrip(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		got, err := ParseEventKind(k.String())
		if err != nil || got != k {
			t.Errorf("kind %d: round trip gave %v, %v", k, got, err)
		}
	}
	if _, err := ParseEventKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
	if s := EventKind(250).String(); !strings.Contains(s, "250") {
		t.Errorf("out-of-range kind String = %q", s)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := testEvents(12)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(evs) {
		t.Errorf("%d lines, want %d", lines, len(evs))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"bogus"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	evs := testEvents(12)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	// The file must be a valid Chrome trace object with a traceEvents
	// array containing both metadata and slice events.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not a trace object: %v", err)
	}
	var slices, metas int
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
		case "M":
			metas++
		}
	}
	if slices != len(evs) {
		t.Errorf("%d slice events, want %d", slices, len(evs))
	}
	if metas == 0 {
		t.Error("no process_name metadata events")
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, evs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, evs)
	}
}

func TestServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests").Add(3)
	if err := reg.Publish("telemetry_test_server"); err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"telemetry_test_server"`) || !strings.Contains(vars, `"requests":3`) {
		t.Errorf("/debug/vars missing registry: %s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ does not look like a pprof index")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
