package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderQuantiles(t *testing.T) {
	r := NewLatencyRecorder(1000)
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	s := r.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if s.MeanUS < 50 || s.MeanUS > 51 {
		t.Fatalf("mean %.2f, want ~50.5", s.MeanUS)
	}
	if s.P50US < 49 || s.P50US > 52 {
		t.Fatalf("p50 %.2f, want ~50", s.P50US)
	}
	if s.P99US < 98 || s.P99US > 100 {
		t.Fatalf("p99 %.2f, want ~99", s.P99US)
	}
	if s.MaxUS != 100 {
		t.Fatalf("max %.2f, want 100", s.MaxUS)
	}
}

// TestLatencyRecorderWindow verifies the reservoir slides: quantiles
// reflect recent observations while count/max stay lifetime-exact.
func TestLatencyRecorderWindow(t *testing.T) {
	r := NewLatencyRecorder(10)
	r.Observe(time.Second) // ancient outlier, evicted below
	for i := 0; i < 10; i++ {
		r.Observe(5 * time.Microsecond)
	}
	s := r.Snapshot()
	if s.Count != 11 {
		t.Fatalf("count %d, want 11", s.Count)
	}
	if s.P99US != 5 {
		t.Fatalf("windowed p99 %.2f, want 5 (outlier should have slid out)", s.P99US)
	}
	if s.MaxUS != 1e6 {
		t.Fatalf("lifetime max %.2f, want 1e6", s.MaxUS)
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Count != 4000 {
		t.Fatalf("count %d, want 4000", s.Count)
	}
}

func TestLatencySnapshotJSON(t *testing.T) {
	r := NewLatencyRecorder(8)
	r.Observe(3 * time.Microsecond)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", k, b)
		}
	}
}
