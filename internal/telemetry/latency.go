package telemetry

import (
	"sync"
	"time"

	"flatnet/internal/stats"
)

// LatencyRecorder measures wall-clock service latencies for a serving
// surface (internal/nocsvc's request handling) and reports quantiles
// over a sliding reservoir of the most recent observations. Unlike the
// cycle-domain histograms in internal/stats, durations here are
// open-ended, so the recorder keeps raw samples in a fixed ring and
// computes quantiles at snapshot time. All methods are safe for
// concurrent use.
type LatencyRecorder struct {
	mu    sync.Mutex
	ring  []float64 // microseconds, most recent window
	next  int
	count int64
	sum   float64
	max   float64
}

// NewLatencyRecorder returns a recorder retaining the window most recent
// observations for quantile estimation (lifetime count, mean and max stay
// exact). window < 1 picks a default of 4096.
func NewLatencyRecorder(window int) *LatencyRecorder {
	if window < 1 {
		window = 4096
	}
	return &LatencyRecorder{ring: make([]float64, 0, window)}
}

// Observe records one service latency.
func (r *LatencyRecorder) Observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	if us < 0 {
		us = 0
	}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, us)
	} else {
		r.ring[r.next] = us
		r.next = (r.next + 1) % len(r.ring)
	}
	r.count++
	r.sum += us
	if us > r.max {
		r.max = us
	}
	r.mu.Unlock()
}

// LatencySnapshot summarizes a LatencyRecorder: lifetime count, mean and
// max, and windowed quantiles, all in microseconds. It marshals cleanly
// to JSON for expvar gauges and the nocsvc stats verb.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// Snapshot returns the current summary.
func (r *LatencyRecorder) Snapshot() LatencySnapshot {
	r.mu.Lock()
	window := append([]float64(nil), r.ring...)
	s := LatencySnapshot{Count: r.count, MaxUS: r.max}
	if r.count > 0 {
		s.MeanUS = r.sum / float64(r.count)
	}
	r.mu.Unlock()
	s.P50US = stats.Quantile(window, 0.50)
	s.P95US = stats.Quantile(window, 0.95)
	s.P99US = stats.Quantile(window, 0.99)
	return s
}
