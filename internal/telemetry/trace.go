package telemetry

import "fmt"

// EventKind identifies one stage of a flit's journey through the router
// pipeline.
type EventKind uint8

const (
	// EvInject marks a flit entering its source router's terminal input
	// buffer.
	EvInject EventKind = iota
	// EvRoute marks a head flit receiving a routing decision (output
	// port and virtual channel) at a router.
	EvRoute
	// EvVCAlloc marks a head flit acquiring its downstream virtual
	// channel (wormhole VC allocation).
	EvVCAlloc
	// EvXbar marks a flit traversing the crossbar onto an output
	// channel.
	EvXbar
	// EvEject marks a flit delivered at its destination terminal.
	EvEject

	numEventKinds
)

var kindNames = [numEventKinds]string{"inject", "route", "vc_alloc", "xbar", "eject"}

// String returns the kind's wire name, as used by the exporters.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseEventKind inverts EventKind.String.
func ParseEventKind(s string) (EventKind, error) {
	for i, n := range kindNames {
		if n == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event kind %q", s)
}

// FlitEvent is one record of the flit tracer: a pipeline stage crossed
// by one flit of one packet at one cycle.
type FlitEvent struct {
	Cycle  int64
	Kind   EventKind
	Packet int64 // packet ID
	Src    int   // source node
	Dst    int   // destination node
	Router int   // router where the event occurred (destination router for ejects)
	Port   int   // output port (EvRoute/EvVCAlloc/EvXbar/EvEject); input port for EvInject
	VC     int   // virtual channel of the decision, -1 where not applicable
	Tail   bool  // set when the flit is its packet's tail
}

// Tracer records flit pipeline events into a fixed-capacity ring buffer:
// when full, the oldest events are overwritten, so a long run retains
// its most recent history at bounded memory. An optional packet filter
// restricts recording to chosen packet IDs, the tool for following a
// single packet's journey.
//
// A Tracer is written from the simulation goroutine only; read it after
// the run (or from the same goroutine).
type Tracer struct {
	ring    []FlitEvent
	head    int // index of the oldest retained event
	n       int
	dropped int64
	only    map[int64]struct{} // nil = record every packet
}

// NewTracer returns a tracer retaining at most capacity events
// (clamped to 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]FlitEvent, capacity)}
}

// FilterPackets restricts recording to the given packet IDs. Calling it
// with no IDs removes the filter.
func (t *Tracer) FilterPackets(ids ...int64) {
	if len(ids) == 0 {
		t.only = nil
		return
	}
	t.only = make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		t.only[id] = struct{}{}
	}
}

// Record appends an event, evicting the oldest if the ring is full.
// Filtered-out events are ignored without counting as dropped.
func (t *Tracer) Record(ev FlitEvent) {
	if t.only != nil {
		if _, ok := t.only[ev.Packet]; !ok {
			return
		}
	}
	if t.n < len(t.ring) {
		t.ring[(t.head+t.n)%len(t.ring)] = ev
		t.n++
		return
	}
	t.ring[t.head] = ev
	t.head = (t.head + 1) % len(t.ring)
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return t.n }

// Dropped returns how many events were evicted by ring wrap.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []FlitEvent {
	out := make([]FlitEvent, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.head+i)%len(t.ring)])
	}
	return out
}

// PacketEvents returns the retained events of one packet, oldest first.
func (t *Tracer) PacketEvents(packet int64) []FlitEvent {
	var out []FlitEvent
	for i := 0; i < t.n; i++ {
		if ev := t.ring[(t.head+i)%len(t.ring)]; ev.Packet == packet {
			out = append(out, ev)
		}
	}
	return out
}

// Reset discards all events, keeping capacity and filter.
func (t *Tracer) Reset() {
	t.head, t.n, t.dropped = 0, 0, 0
}
