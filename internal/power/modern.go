package power

import (
	"flatnet/internal/cost"
)

// ModernComparison holds one row of the flattened-butterfly versus
// Slim Fly versus dragonfly sweep — the high-radix successors compared
// under the paper's own cost and power methodology.
type ModernComparison struct {
	N         int
	FlatFly   Breakdown
	SlimFly   Breakdown
	Dragonfly Breakdown
}

// CompareModern evaluates the three high-radix direct topologies at
// size n. All three dedicate SerDes to packaging levels (§5.3 applies
// to direct topologies generally), so the comparison isolates what the
// graphs themselves buy: the dragonfly's local channels stay on cheap
// drivers, while the Slim Fly's diameter-2 fabric pays global drivers
// on every channel but needs the fewest channels per node.
func CompareModern(n int, m Model, p cost.Packaging) (ModernComparison, error) {
	ff, err := cost.FlatFlyBOM(n, p)
	if err != nil {
		return ModernComparison{}, err
	}
	sf, err := cost.SlimFlyBOM(n, p)
	if err != nil {
		return ModernComparison{}, err
	}
	df, err := cost.DragonflyBOM(n, p)
	if err != nil {
		return ModernComparison{}, err
	}
	return ModernComparison{
		N:         n,
		FlatFly:   Price(ff, m, p, true),
		SlimFly:   Price(sf, m, p, true),
		Dragonfly: Price(df, m, p, true),
	}, nil
}

// SweepModern evaluates the modern-topology comparison across sizes.
func SweepModern(sizes []int, m Model, p cost.Packaging) ([]ModernComparison, error) {
	out := make([]ModernComparison, 0, len(sizes))
	for _, n := range sizes {
		c, err := CompareModern(n, m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
