// Package power implements the paper's §5.3 power model: switch power
// proportional to router bandwidth plus per-signal SerDes power that
// depends on the packaging level of each link. Direct topologies and the
// flattened butterfly can dedicate SerDes to local links (40 mW versus
// 200 mW for a global cable driver), which is the source of the flattened
// butterfly's power advantage (Fig. 15).
package power

import (
	"flatnet/internal/cost"
)

// Model holds the Table 5 power constants.
type Model struct {
	// SwitchW is the power of a fully-utilized reference-radix router
	// (switch, arbitration, routing logic): 40 W. It scales with the
	// fraction of router bandwidth (ports) actually used.
	SwitchW float64
	// LinkGlobalW is the per-signal SerDes power to drive a global cable
	// (P_link_gg): 0.200 W.
	LinkGlobalW float64
	// LinkGlobalLocalW is the per-signal power of a global-capable SerDes
	// driving a local link (P_link_gl): 0.160 W.
	LinkGlobalLocalW float64
	// LinkLocalW is the per-signal power of a dedicated local SerDes
	// driving <1 m of backplane (P_link_ll): 0.040 W.
	LinkLocalW float64
}

// DefaultModel returns the Table 5 constants.
func DefaultModel() Model {
	return Model{
		SwitchW:          40,
		LinkGlobalW:      0.200,
		LinkGlobalLocalW: 0.160,
		LinkLocalW:       0.040,
	}
}

// signalPower assigns SerDes power to a link group. Backplane links use
// dedicated local SerDes; local cables use the intermediate P_link_gl
// driver; global cables use full global drivers. `dedicated` reports
// whether the topology can commit SerDes to packaging levels (direct
// topologies and the flattened butterfly, §5.3); without dedication every
// inter-router SerDes must be provisioned as a global driver.
func (m Model) signalPower(class cost.LinkClass, dedicated bool) float64 {
	if !dedicated {
		if class == cost.Backplane {
			// Terminal links are always local and always dedicated.
			return m.LinkLocalW
		}
		return m.LinkGlobalW
	}
	switch class {
	case cost.Backplane, cost.LocalCable:
		return m.LinkLocalW
	default:
		return m.LinkGlobalW
	}
}

// Breakdown is the per-node power of one topology at one size.
type Breakdown struct {
	Topology      string
	N             int
	SwitchPerNode float64 // watts
	LinkPerNode   float64 // watts
	TotalPerNode  float64 // watts
}

// Price evaluates the power model over a bill of materials. dedicated
// selects the §5.3 dedicated-SerDes assumption.
func Price(b cost.BOM, m Model, p cost.Packaging, dedicated bool) Breakdown {
	out := Breakdown{Topology: b.Topology, N: b.N}
	out.SwitchPerNode = b.RoutersPerNode * m.SwitchW * float64(b.RouterPortsUsed) / float64(p.Radix)
	for _, g := range b.Links {
		out.LinkPerNode += g.PerNode * float64(p.SignalsPerPort) * m.signalPower(g.Class, dedicated)
	}
	out.TotalPerNode = out.SwitchPerNode + out.LinkPerNode
	return out
}

// Comparison holds one row of the Fig. 15 sweep.
type Comparison struct {
	N          int
	FlatFly    Breakdown
	FoldedClos Breakdown
	Butterfly  Breakdown
	Hypercube  Breakdown
}

// Compare evaluates all four topologies at size n. The flattened
// butterfly and the hypercube (a direct topology) get dedicated SerDes;
// the folded Clos and conventional butterfly are indirect topologies whose
// inter-router SerDes must drive global links (§5.3).
func Compare(n int, m Model, p cost.Packaging) (Comparison, error) {
	ff, err := cost.FlatFlyBOM(n, p)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		N:          n,
		FlatFly:    Price(ff, m, p, true),
		FoldedClos: Price(cost.FoldedClosBOM(n, p), m, p, false),
		Butterfly:  Price(cost.ButterflyBOM(n, p), m, p, false),
		Hypercube:  Price(cost.HypercubeBOM(n, p), m, p, true),
	}, nil
}

// Sweep evaluates the Fig. 15 comparison across sizes.
func Sweep(sizes []int, m Model, p cost.Packaging) ([]Comparison, error) {
	out := make([]Comparison, 0, len(sizes))
	for _, n := range sizes {
		c, err := Compare(n, m, p)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// SavingsVsClos returns the flattened butterfly's fractional power
// reduction versus the folded Clos (the paper reports ~48% at 4-8K nodes,
// dropping to ~20% beyond 8K when a third dimension is needed).
func (c Comparison) SavingsVsClos() float64 {
	if c.FoldedClos.TotalPerNode == 0 {
		return 0
	}
	return 1 - c.FlatFly.TotalPerNode/c.FoldedClos.TotalPerNode
}
