package power

import (
	"math"
	"testing"

	"flatnet/internal/cost"
)

func TestTable5Constants(t *testing.T) {
	m := DefaultModel()
	if m.SwitchW != 40 || m.LinkGlobalW != 0.200 || m.LinkGlobalLocalW != 0.160 || m.LinkLocalW != 0.040 {
		t.Fatalf("Table 5 constants wrong: %+v", m)
	}
}

func TestSignalPowerAssignment(t *testing.T) {
	m := DefaultModel()
	// Dedicated SerDes: local links draw local power.
	if m.signalPower(cost.Backplane, true) != m.LinkLocalW {
		t.Error("dedicated backplane should be P_ll")
	}
	if m.signalPower(cost.LocalCable, true) != m.LinkLocalW {
		t.Error("dedicated local cable should be P_ll")
	}
	if m.signalPower(cost.GlobalCable, true) != m.LinkGlobalW {
		t.Error("global cable should be P_gg")
	}
	// Indirect topologies: inter-router SerDes provisioned global.
	if m.signalPower(cost.LocalCable, false) != m.LinkGlobalW {
		t.Error("non-dedicated local cable should pay P_gg")
	}
	if m.signalPower(cost.Backplane, false) != m.LinkLocalW {
		t.Error("terminal backplane is always local")
	}
}

func TestFig15PowerComparison(t *testing.T) {
	m, p := DefaultModel(), cost.DefaultPackaging()
	for _, n := range []int{1024, 4096, 16384, 65536} {
		c, err := Compare(n, m, p)
		if err != nil {
			t.Fatal(err)
		}
		// Hypercube gives the highest power consumption (§5.3).
		for _, other := range []Breakdown{c.FlatFly, c.FoldedClos, c.Butterfly} {
			if c.Hypercube.TotalPerNode <= other.TotalPerNode {
				t.Errorf("N=%d: hypercube (%.2fW) should exceed %s (%.2fW)",
					n, c.Hypercube.TotalPerNode, other.Topology, other.TotalPerNode)
			}
		}
		// The FB always beats the folded Clos.
		if c.FlatFly.TotalPerNode >= c.FoldedClos.TotalPerNode {
			t.Errorf("N=%d: FB power (%.2fW) should undercut Clos (%.2fW)",
				n, c.FlatFly.TotalPerNode, c.FoldedClos.TotalPerNode)
		}
	}
}

func TestFig15FBBeatsButterflyAt1K(t *testing.T) {
	// §5.3: "For 1K node network, the flattened butterfly provides lower
	// power consumption than the conventional butterfly since it takes
	// advantage of the dedicated SerDes to drive local links."
	m, p := DefaultModel(), cost.DefaultPackaging()
	c, err := Compare(1024, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.FlatFly.TotalPerNode >= c.Butterfly.TotalPerNode {
		t.Errorf("1K: FB power (%.3fW) should be below butterfly (%.3fW)",
			c.FlatFly.TotalPerNode, c.Butterfly.TotalPerNode)
	}
}

func TestFig15SavingsBands(t *testing.T) {
	// §5.3: ~48% reduction vs the folded Clos at 4K-8K (FB has 2 dims,
	// Clos has 3 levels); smaller (paper: ~20%) beyond 8K when the FB
	// needs a third dimension.
	m, p := DefaultModel(), cost.DefaultPackaging()
	mid, err := Compare(4096, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := mid.SavingsVsClos(); s < 0.40 || s > 0.65 {
		t.Errorf("4K power savings = %.2f, want ~0.48", s)
	}
	big, err := Compare(16384, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if s := big.SavingsVsClos(); s < 0.10 || s >= mid.SavingsVsClos() {
		t.Errorf("16K power savings = %.2f, want positive but below the 4K band (%.2f)",
			s, mid.SavingsVsClos())
	}
}

func TestPriceConsistency(t *testing.T) {
	m, p := DefaultModel(), cost.DefaultPackaging()
	b, err := cost.FlatFlyBOM(4096, p)
	if err != nil {
		t.Fatal(err)
	}
	br := Price(b, m, p, true)
	if math.Abs(br.TotalPerNode-(br.SwitchPerNode+br.LinkPerNode)) > 1e-9 {
		t.Error("total != switch + link")
	}
	if br.SwitchPerNode <= 0 || br.LinkPerNode <= 0 {
		t.Errorf("power components must be positive: %+v", br)
	}
	// Dedicated SerDes can only reduce link power.
	nb := Price(b, m, p, false)
	if br.LinkPerNode > nb.LinkPerNode {
		t.Error("dedicated SerDes should not increase link power")
	}
}

func TestSweepAndErrors(t *testing.T) {
	m, p := DefaultModel(), cost.DefaultPackaging()
	rows, err := Sweep([]int{1024, 4096}, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if _, err := Sweep([]int{1 << 40}, m, p); err == nil {
		t.Error("impossible size accepted")
	}
	if c := (Comparison{}); c.SavingsVsClos() != 0 {
		t.Error("zero comparison should report zero savings")
	}
}
