// Package traffic implements the workloads used in the paper's evaluation:
// uniform random (benign), the worst-case adversarial pattern of §3.2
// (every node attached to router R_i sends to a random node attached to
// router R_{i+1}), and the standard permutation patterns used in
// interconnection-network studies for additional coverage.
package traffic

import (
	"fmt"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

// Pattern maps a source node to a destination node, possibly randomly.
// Implementations must be safe to call from a single goroutine with any
// per-node RNG stream.
type Pattern interface {
	Name() string
	// Dest returns the destination for a packet injected at src.
	Dest(src topo.NodeID, r *rng.Source) topo.NodeID
}

// Uniform is uniform-random traffic over all nodes, self included. With
// self-destinations included, the expected load on every inter-router
// channel of a flattened butterfly equals the injection rate exactly,
// matching the paper's capacity normalization (2B/N = 1 flit/node/cycle).
type Uniform struct {
	N int
}

// NewUniform returns uniform random traffic over n nodes.
func NewUniform(n int) *Uniform { return &Uniform{N: n} }

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u *Uniform) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	return topo.NodeID(r.Intn(u.N))
}

// WorstCase is the adversarial pattern of §3.2: nodes are grouped by
// router (Concentration consecutive nodes per group) and every node in
// group i sends to a uniformly random node in group (i+1) mod Groups. With
// minimal routing all of a router's traffic then contends for the single
// channel to the next router.
type WorstCase struct {
	Concentration int
	Groups        int
}

// NewWorstCase builds the adversarial pattern for a network of
// groups*concentration nodes.
func NewWorstCase(concentration, groups int) *WorstCase {
	return &WorstCase{Concentration: concentration, Groups: groups}
}

// Name implements Pattern.
func (w *WorstCase) Name() string { return "worstcase" }

// Dest implements Pattern.
func (w *WorstCase) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	g := (int(src)/w.Concentration + 1) % w.Groups
	return topo.NodeID(g*w.Concentration + r.Intn(w.Concentration))
}

// BitComplement sends node a to node (N-1)-a, N a power of two in spirit
// but any N works.
type BitComplement struct {
	N int
}

// NewBitComplement returns the bit-complement permutation over n nodes.
func NewBitComplement(n int) *BitComplement { return &BitComplement{N: n} }

// Name implements Pattern.
func (b *BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (b *BitComplement) Dest(src topo.NodeID, _ *rng.Source) topo.NodeID {
	return topo.NodeID(b.N - 1 - int(src))
}

// Transpose treats the node index as a 2b-bit number and swaps its halves:
// destination = (a << b | a >> b) mod N. N must be an even power of two.
type Transpose struct {
	N    int
	half uint
}

// NewTranspose returns the transpose permutation; n must be a power of four
// (so the address splits into two equal halves).
func NewTranspose(n int) (*Transpose, error) {
	bits := uint(0)
	for v := n; v > 1; v >>= 1 {
		if v&1 != 0 {
			return nil, fmt.Errorf("traffic: transpose needs power-of-two size, got %d", n)
		}
		bits++
	}
	if bits%2 != 0 {
		return nil, fmt.Errorf("traffic: transpose needs an even number of address bits, got %d", bits)
	}
	return &Transpose{N: n, half: bits / 2}, nil
}

// Name implements Pattern.
func (t *Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (t *Transpose) Dest(src topo.NodeID, _ *rng.Source) topo.NodeID {
	a := int(src)
	lo := a & ((1 << t.half) - 1)
	hi := a >> t.half
	return topo.NodeID(lo<<t.half | hi)
}

// Shuffle is the perfect-shuffle permutation: rotate the address left by
// one bit. N must be a power of two.
type Shuffle struct {
	N    int
	bits uint
}

// NewShuffle returns the shuffle permutation over n nodes (power of two).
func NewShuffle(n int) (*Shuffle, error) {
	bits := uint(0)
	for v := n; v > 1; v >>= 1 {
		if v&1 != 0 {
			return nil, fmt.Errorf("traffic: shuffle needs power-of-two size, got %d", n)
		}
		bits++
	}
	return &Shuffle{N: n, bits: bits}, nil
}

// Name implements Pattern.
func (s *Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (s *Shuffle) Dest(src topo.NodeID, _ *rng.Source) topo.NodeID {
	a := int(src)
	top := a >> (s.bits - 1)
	return topo.NodeID(((a << 1) | top) & (s.N - 1))
}

// Tornado sends each group of Concentration nodes halfway around the
// router ring: group i to a random node of group (i + Groups/2 - ...) —
// classically (i + ceil(Groups/2) - 1) mod Groups; we use the common
// definition dest group = (i + Groups/2) mod Groups.
type Tornado struct {
	Concentration int
	Groups        int
}

// NewTornado builds a tornado pattern over router groups.
func NewTornado(concentration, groups int) *Tornado {
	return &Tornado{Concentration: concentration, Groups: groups}
}

// Name implements Pattern.
func (t *Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t *Tornado) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	g := (int(src)/t.Concentration + t.Groups/2) % t.Groups
	return topo.NodeID(g*t.Concentration + r.Intn(t.Concentration))
}

// Hotspot sends a fraction of all traffic to a small set of hot nodes and
// the remainder uniformly — the classic memory-controller contention
// workload.
type Hotspot struct {
	N        int
	Hot      []topo.NodeID
	Fraction float64 // probability a packet targets a hot node
	uniform  *Uniform
	label    string // overrides the reported name (incast)
}

// NewHotspot builds a hotspot pattern over n nodes. fraction of packets
// go to a uniformly chosen member of hot; the rest are uniform random.
func NewHotspot(n int, hot []topo.NodeID, fraction float64) (*Hotspot, error) {
	if len(hot) == 0 {
		return nil, fmt.Errorf("traffic: hotspot needs at least one hot node")
	}
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v out of [0,1]", fraction)
	}
	for _, h := range hot {
		if int(h) < 0 || int(h) >= n {
			return nil, fmt.Errorf("traffic: hot node %d out of range", h)
		}
	}
	return &Hotspot{N: n, Hot: append([]topo.NodeID(nil), hot...), Fraction: fraction,
		uniform: NewUniform(n)}, nil
}

// NewIncast builds the many-to-one degenerate case of Hotspot: every
// packet from every node targets the single sink node. Incast is the
// classic storage/parameter-server fan-in workload; the sink's terminal
// ejection channel is the only bottleneck, so throughput per node caps
// at 1/N regardless of topology.
func NewIncast(n int, sink topo.NodeID) (*Hotspot, error) {
	h, err := NewHotspot(n, []topo.NodeID{sink}, 1)
	if err != nil {
		return nil, err
	}
	h.label = "incast"
	return h, nil
}

// Name implements Pattern.
func (h *Hotspot) Name() string {
	if h.label != "" {
		return h.label
	}
	return "hotspot"
}

// Dest implements Pattern.
func (h *Hotspot) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	if r.Bernoulli(h.Fraction) {
		return h.Hot[r.Intn(len(h.Hot))]
	}
	return h.uniform.Dest(src, r)
}

// RandPerm is a random permutation fixed at construction: every node has
// exactly one destination and every node receives from exactly one
// source. Unlike Uniform's per-packet randomness, a fixed permutation
// stresses specific channels for the whole run.
type RandPerm struct {
	table []topo.NodeID
}

// NewRandPerm draws a permutation of n nodes from the given seed.
func NewRandPerm(n int, seed uint64) *RandPerm {
	r := rng.New(seed)
	p := r.Perm(n)
	table := make([]topo.NodeID, n)
	for i, v := range p {
		table[i] = topo.NodeID(v)
	}
	return &RandPerm{table: table}
}

// Name implements Pattern.
func (rp *RandPerm) Name() string { return "randperm" }

// Dest implements Pattern.
func (rp *RandPerm) Dest(src topo.NodeID, _ *rng.Source) topo.NodeID {
	return rp.table[src]
}

// Fixed is an arbitrary fixed permutation (or any total map) given as a
// table. Useful for tests and custom adversaries.
type Fixed struct {
	Label string
	Table []topo.NodeID
}

// NewFixed wraps a destination table.
func NewFixed(label string, table []topo.NodeID) *Fixed {
	return &Fixed{Label: label, Table: table}
}

// Name implements Pattern.
func (f *Fixed) Name() string { return f.Label }

// Dest implements Pattern.
func (f *Fixed) Dest(src topo.NodeID, _ *rng.Source) topo.NodeID { return f.Table[src] }
