package traffic

import (
	"fmt"
	"sort"
	"strings"

	"flatnet/internal/topo"
)

// BuildCtx carries everything a registered pattern constructor may need.
// Nodes is always required; the remaining fields have workable defaults
// so every registry name is constructible from (Nodes, Seed) alone — the
// set a service endpoint can safely offer to remote callers. Group
// patterns (worstcase, tornado) consume Concentration, hotspot/incast
// consume HotSet and HotFraction.
type BuildCtx struct {
	Nodes int
	Seed  uint64

	// Concentration is the number of consecutive nodes per router group
	// for the group patterns (worstcase, tornado). 0 means 1 node per
	// group; otherwise it must divide Nodes.
	Concentration int

	// HotSet is the hot-node set for hotspot (and the sink, first
	// element, for incast). Empty defaults to {0}.
	HotSet []topo.NodeID

	// HotFraction is the probability a hotspot packet targets a hot node.
	// 0 defaults to 0.1, the classic memory-controller contention level.
	HotFraction float64
}

// UnknownPatternError is returned by Build (and surfaced by every
// pattern-name lookup in the CLIs and services) when a name is not in
// the registry. Known lists the canonical names a caller may use.
type UnknownPatternError struct {
	Name  string
	Known []string
}

// Error implements error.
func (e *UnknownPatternError) Error() string {
	return fmt.Sprintf("traffic: unknown pattern %q (have %s)", e.Name, strings.Join(e.Known, ", "))
}

// groupCtx resolves the group shape for worstcase/tornado.
func groupCtx(ctx BuildCtx, what string) (conc, groups int, err error) {
	conc = ctx.Concentration
	if conc <= 0 {
		conc = 1
	}
	if ctx.Nodes%conc != 0 {
		return 0, 0, fmt.Errorf("traffic: %s concentration %d does not divide %d nodes", what, conc, ctx.Nodes)
	}
	return conc, ctx.Nodes / conc, nil
}

// hotCtx resolves the hot set and skew for hotspot/incast.
func hotCtx(ctx BuildCtx) ([]topo.NodeID, float64) {
	hot := ctx.HotSet
	if len(hot) == 0 {
		hot = []topo.NodeID{0}
	}
	frac := ctx.HotFraction
	if frac == 0 {
		frac = 0.1
	}
	return hot, frac
}

// The registry names every buildable pattern. Constructors take the
// full BuildCtx; size constraints (shuffle's power-of-two, group
// divisibility) surface as errors at build time.
var registry = map[string]func(ctx BuildCtx) (Pattern, error){
	"uniform":   func(ctx BuildCtx) (Pattern, error) { return NewUniform(ctx.Nodes), nil },
	"bitcomp":   func(ctx BuildCtx) (Pattern, error) { return NewBitComplement(ctx.Nodes), nil },
	"transpose": func(ctx BuildCtx) (Pattern, error) { return NewTranspose(ctx.Nodes) },
	"shuffle":   func(ctx BuildCtx) (Pattern, error) { return NewShuffle(ctx.Nodes) },
	"randperm":  func(ctx BuildCtx) (Pattern, error) { return NewRandPerm(ctx.Nodes, ctx.Seed), nil },
	"worstcase": func(ctx BuildCtx) (Pattern, error) {
		conc, groups, err := groupCtx(ctx, "worstcase")
		if err != nil {
			return nil, err
		}
		return NewWorstCase(conc, groups), nil
	},
	"tornado": func(ctx BuildCtx) (Pattern, error) {
		conc, groups, err := groupCtx(ctx, "tornado")
		if err != nil {
			return nil, err
		}
		return NewTornado(conc, groups), nil
	},
	"hotspot": func(ctx BuildCtx) (Pattern, error) {
		hot, frac := hotCtx(ctx)
		return NewHotspot(ctx.Nodes, hot, frac)
	},
	"incast": func(ctx BuildCtx) (Pattern, error) {
		hot, _ := hotCtx(ctx)
		return NewIncast(ctx.Nodes, hot[0])
	},
}

// aliases maps the sweep-vocabulary short forms onto registry names.
var aliases = map[string]string{
	"UR":  "uniform",
	"BC":  "bitcomp",
	"TP":  "transpose",
	"SH":  "shuffle",
	"RP":  "randperm",
	"WC":  "worstcase",
	"TOR": "tornado",
	"HS":  "hotspot",
	"IC":  "incast",
}

// Canonical resolves a pattern name or alias to its registry name,
// reporting whether it is known.
func Canonical(name string) (string, bool) {
	if a, ok := aliases[name]; ok {
		name = a
	}
	_, ok := registry[name]
	return name, ok
}

// Known reports whether name (or its alias) is buildable via Build.
func Known(name string) bool {
	_, ok := Canonical(name)
	return ok
}

// Names lists the registry's canonical pattern names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Aliases returns a copy of the short-form alias table, alias to
// canonical name (the sweep vocabulary: UR, WC, HS, ...).
func Aliases() map[string]string {
	out := make(map[string]string, len(aliases))
	for a, n := range aliases {
		out[a] = n
	}
	return out
}

// Build constructs a registered pattern (by canonical name or alias)
// from the given context. Unknown names return an *UnknownPatternError.
func Build(name string, ctx BuildCtx) (Pattern, error) {
	canon, ok := Canonical(name)
	if !ok {
		return nil, &UnknownPatternError{Name: name, Known: Names()}
	}
	return registry[canon](ctx)
}

// BuildSource constructs a registered pattern wrapped in the default
// Bernoulli arrival process — the one-call path for callers that speak
// pattern names but want a full workload Source.
func BuildSource(name string, ctx BuildCtx) (Source, error) {
	pat, err := Build(name, ctx)
	if err != nil {
		return nil, err
	}
	return NewBernoulli(pat), nil
}
