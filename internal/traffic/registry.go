package traffic

import (
	"fmt"
	"sort"
)

// The registry names every pattern constructible from (nodes, seed)
// alone — the set a service endpoint can safely offer to remote
// callers. Group patterns (worstcase, tornado) need a concentration and
// hotspot needs a hot-node set, so they are deliberately absent; callers
// with that context construct them directly.
var registry = map[string]func(nodes int, seed uint64) (Pattern, error){
	"uniform":   func(n int, _ uint64) (Pattern, error) { return NewUniform(n), nil },
	"bitcomp":   func(n int, _ uint64) (Pattern, error) { return NewBitComplement(n), nil },
	"transpose": func(n int, _ uint64) (Pattern, error) { return NewTranspose(n) },
	"shuffle":   func(n int, _ uint64) (Pattern, error) { return NewShuffle(n) },
	"randperm":  func(n int, seed uint64) (Pattern, error) { return NewRandPerm(n, seed), nil },
}

// aliases maps the sweep-vocabulary short forms onto registry names.
var aliases = map[string]string{
	"UR": "uniform",
	"BC": "bitcomp",
	"TP": "transpose",
	"SH": "shuffle",
	"RP": "randperm",
}

// Canonical resolves a pattern name or alias to its registry name,
// reporting whether it is known.
func Canonical(name string) (string, bool) {
	if a, ok := aliases[name]; ok {
		name = a
	}
	_, ok := registry[name]
	return name, ok
}

// Known reports whether name (or its alias) is buildable via Build.
func Known(name string) bool {
	_, ok := Canonical(name)
	return ok
}

// Names lists the registry's canonical pattern names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Build constructs a registered pattern (by canonical name or alias)
// for an n-node network. seed only matters to seeded patterns
// (randperm); size constraints (e.g. shuffle's power-of-two) surface as
// errors here.
func Build(name string, nodes int, seed uint64) (Pattern, error) {
	canon, ok := Canonical(name)
	if !ok {
		return nil, fmt.Errorf("traffic: unknown pattern %q (have %v)", name, Names())
	}
	return registry[canon](nodes, seed)
}
