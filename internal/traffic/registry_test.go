package traffic

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

func TestRegistryCanonical(t *testing.T) {
	cases := []struct {
		in    string
		canon string
		ok    bool
	}{
		{"uniform", "uniform", true},
		{"UR", "uniform", true},
		{"BC", "bitcomp", true},
		{"TP", "transpose", true},
		{"SH", "shuffle", true},
		{"RP", "randperm", true},
		{"randperm", "randperm", true},
		{"WC", "worstcase", true},
		{"worstcase", "worstcase", true},
		{"TOR", "tornado", true},
		{"HS", "hotspot", true},
		{"IC", "incast", true},
		{"nope", "nope", false},
		{"", "", false},
	}
	for _, c := range cases {
		canon, ok := Canonical(c.in)
		if ok != c.ok || (ok && canon != c.canon) {
			t.Errorf("Canonical(%q) = %q, %v; want %q, %v", c.in, canon, ok, c.canon, c.ok)
		}
		if Known(c.in) != c.ok {
			t.Errorf("Known(%q) = %v, want %v", c.in, !c.ok, c.ok)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"bitcomp", "hotspot", "incast", "randperm", "shuffle",
		"tornado", "transpose", "uniform", "worstcase"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestRegistryBuild(t *testing.T) {
	ctx := BuildCtx{Nodes: 16, Seed: 7, Concentration: 4}
	for _, name := range Names() {
		p, err := Build(name, ctx)
		if err != nil {
			t.Fatalf("Build(%q, %+v): %v", name, ctx, err)
		}
		r := rng.New(1)
		for src := 0; src < 16; src++ {
			d := p.Dest(topo.NodeID(src), r)
			if d < 0 || int(d) >= 16 {
				t.Fatalf("%s: Dest(%d) = %d out of range", name, src, d)
			}
		}
	}
	// Seeded patterns derive from the seed deterministically.
	a, _ := Build("RP", BuildCtx{Nodes: 16, Seed: 42})
	b, _ := Build("randperm", BuildCtx{Nodes: 16, Seed: 42})
	for src := 0; src < 16; src++ {
		if a.Dest(topo.NodeID(src), nil) != b.Dest(topo.NodeID(src), nil) {
			t.Fatalf("randperm not seed-deterministic at src %d", src)
		}
	}
	// Size constraints surface as errors, not panics.
	if _, err := Build("shuffle", BuildCtx{Nodes: 12}); err == nil {
		t.Fatal("shuffle accepted a non-power-of-two size")
	}
	if _, err := Build("worstcase", BuildCtx{Nodes: 16, Concentration: 3}); err == nil {
		t.Fatal("worstcase accepted a non-dividing concentration")
	}
	// Unknown names produce the structured error listing the registry.
	_, err := Build("bogus", BuildCtx{Nodes: 16})
	var upe *UnknownPatternError
	if !errors.As(err, &upe) {
		t.Fatalf("Build(bogus) error = %v, want *UnknownPatternError", err)
	}
	if upe.Name != "bogus" || !reflect.DeepEqual(upe.Known, Names()) {
		t.Fatalf("UnknownPatternError = %+v", upe)
	}
	if !strings.Contains(upe.Error(), "uniform") {
		t.Fatalf("error text %q does not list known patterns", upe.Error())
	}
}

func TestRegistryGroupAndHotDefaults(t *testing.T) {
	// Group patterns default to one node per group.
	p, err := Build("tornado", BuildCtx{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	tor := p.(*Tornado)
	if tor.Concentration != 1 || tor.Groups != 8 {
		t.Fatalf("tornado defaults = %+v, want conc 1, groups 8", tor)
	}
	// Hotspot defaults to hot set {0} at fraction 0.1.
	p, err = Build("hotspot", BuildCtx{Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	hs := p.(*Hotspot)
	if len(hs.Hot) != 1 || hs.Hot[0] != 0 || hs.Fraction != 0.1 {
		t.Fatalf("hotspot defaults = %+v, want hot {0}, fraction 0.1", hs)
	}
	// Incast sends everything to the first hot node.
	p, err = Build("incast", BuildCtx{Nodes: 8, HotSet: []topo.NodeID{5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "incast" {
		t.Fatalf("incast name = %q", p.Name())
	}
	r := rng.New(3)
	for src := 0; src < 8; src++ {
		if d := p.Dest(topo.NodeID(src), r); d != 5 {
			t.Fatalf("incast Dest(%d) = %d, want 5", src, d)
		}
	}
}
