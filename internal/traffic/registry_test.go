package traffic

import (
	"reflect"
	"testing"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

func TestRegistryCanonical(t *testing.T) {
	cases := []struct {
		in    string
		canon string
		ok    bool
	}{
		{"uniform", "uniform", true},
		{"UR", "uniform", true},
		{"BC", "bitcomp", true},
		{"TP", "transpose", true},
		{"SH", "shuffle", true},
		{"RP", "randperm", true},
		{"randperm", "randperm", true},
		{"nope", "nope", false},
		{"WC", "WC", false}, // needs a concentration: not registered
		{"", "", false},
	}
	for _, c := range cases {
		canon, ok := Canonical(c.in)
		if ok != c.ok || (ok && canon != c.canon) {
			t.Errorf("Canonical(%q) = %q, %v; want %q, %v", c.in, canon, ok, c.canon, c.ok)
		}
		if Known(c.in) != c.ok {
			t.Errorf("Known(%q) = %v, want %v", c.in, !c.ok, c.ok)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"bitcomp", "randperm", "shuffle", "transpose", "uniform"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestRegistryBuild(t *testing.T) {
	for _, name := range Names() {
		p, err := Build(name, 16, 7)
		if err != nil {
			t.Fatalf("Build(%q, 16, 7): %v", name, err)
		}
		r := rng.New(1)
		for src := 0; src < 16; src++ {
			d := p.Dest(topo.NodeID(src), r)
			if d < 0 || int(d) >= 16 {
				t.Fatalf("%s: Dest(%d) = %d out of range", name, src, d)
			}
		}
	}
	// Seeded patterns derive from the seed deterministically.
	a, _ := Build("RP", 16, 42)
	b, _ := Build("randperm", 16, 42)
	for src := 0; src < 16; src++ {
		if a.Dest(topo.NodeID(src), nil) != b.Dest(topo.NodeID(src), nil) {
			t.Fatalf("randperm not seed-deterministic at src %d", src)
		}
	}
	// Size constraints surface as errors, not panics.
	if _, err := Build("shuffle", 12, 1); err == nil {
		t.Fatal("shuffle accepted a non-power-of-two size")
	}
	if _, err := Build("bogus", 16, 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}
