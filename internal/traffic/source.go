package traffic

import (
	"fmt"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

// Source is a full workload: it owns both *when* a node injects (the
// arrival process) and *where* it sends (the destination process). The
// simulator calls Arrivals once per node per cycle, in node-index order,
// from the caller thread between Steps; Dest is called at packet
// materialization time from the node's home shard. Both receive the
// node's own RNG stream, so a Source must not keep RNG state of its own —
// any other per-node state (e.g. the on/off burst state) lives in the
// Source and is serialised through State/SetState so warmed networks can
// snapshot and restore it.
type Source interface {
	Name() string
	// Arrivals returns how many packets node src injects this cycle at
	// offered load `load` (flits per node per cycle) with pktFlits flits
	// per packet. It must draw from r deterministically — same state,
	// same draws.
	Arrivals(src topo.NodeID, load float64, pktFlits int, r *rng.Source) int
	// Dest returns the destination for a packet injected at src.
	Dest(src topo.NodeID, r *rng.Source) topo.NodeID
	// State serialises the source's mutable workload state (not its
	// configuration). Sources with no mutable state return (nil, nil).
	// An error here makes the owning network refuse to snapshot.
	State() ([]byte, error)
	// SetState restores state captured by State. SetState(nil) resets
	// the source to its initial state.
	SetState(b []byte) error
}

// LoadValidator is implemented by sources whose arrival process
// constrains the offered load (e.g. OnOff requires load <= peak). The
// simulator checks it once per Generate call, before any draws.
type LoadValidator interface {
	ValidateLoad(load float64) error
}

// Stateless is an embeddable helper providing the no-op State/SetState
// pair for sources whose arrival process keeps no mutable state.
type Stateless struct{}

// State implements Source.
func (Stateless) State() ([]byte, error) { return nil, nil }

// SetState implements Source.
func (Stateless) SetState(b []byte) error {
	if len(b) != 0 {
		return fmt.Errorf("traffic: stateless source given %d bytes of state", len(b))
	}
	return nil
}

// Bernoulli wraps a destination Pattern with the memoryless Bernoulli
// arrival process the paper's open-loop evaluation uses: each node
// independently injects a packet with probability load/pktFlits every
// cycle. It draws exactly one Bernoulli variate per node per cycle, so a
// wrapped legacy pattern replays bit-identically to the historical
// generator.
type Bernoulli struct {
	Stateless
	Pattern Pattern
}

// NewBernoulli wraps pat in a Bernoulli arrival process.
func NewBernoulli(pat Pattern) *Bernoulli { return &Bernoulli{Pattern: pat} }

// Name implements Source. A Bernoulli-wrapped pattern keeps the bare
// pattern name: it is the default arrival process.
func (s *Bernoulli) Name() string { return s.Pattern.Name() }

// Arrivals implements Source.
func (s *Bernoulli) Arrivals(_ topo.NodeID, load float64, pktFlits int, r *rng.Source) int {
	if r.Bernoulli(load / float64(pktFlits)) {
		return 1
	}
	return 0
}

// Dest implements Source.
func (s *Bernoulli) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	return s.Pattern.Dest(src, r)
}

// OnOff is the bursty MMPP-style workload: a two-state Markov modulated
// Bernoulli process. Each node alternates between an ON state injecting
// at Peak flits/node/cycle and a silent OFF state, with mean burst
// length AvgBurst cycles, such that the long-run average offered load is
// the requested load. The per-node ON/OFF bits are the source's mutable
// state and serialise through State/SetState.
type OnOff struct {
	Pattern  Pattern
	Peak     float64 // injection rate while ON, flits/node/cycle, in (0,1]
	AvgBurst float64 // mean ON-burst length in cycles, >= 1

	on []bool // per-node modulation state, grown on first use

	// Per-(load, pktFlits) probability cache: the derived transition and
	// arrival probabilities are pure functions of the call parameters, so
	// recompute only when they change.
	cLoad    float64
	cFlits   int
	cValid   bool
	exitOn   float64
	enterOn  float64
	pArrival float64
}

// NewOnOff builds a bursty on/off source over pat. peak is the ON-state
// injection rate in (0,1]; avgBurst the mean burst length in cycles.
func NewOnOff(pat Pattern, peak, avgBurst float64) (*OnOff, error) {
	if peak <= 0 || peak > 1 {
		return nil, fmt.Errorf("traffic: on/off peak rate %v out of (0,1]", peak)
	}
	if avgBurst < 1 {
		return nil, fmt.Errorf("traffic: on/off average burst length %v must be >= 1 cycle", avgBurst)
	}
	return &OnOff{Pattern: pat, Peak: peak, AvgBurst: avgBurst}, nil
}

// Name implements Source.
func (s *OnOff) Name() string { return "burst(" + s.Pattern.Name() + ")" }

// ValidateLoad implements LoadValidator: the average load cannot exceed
// the ON-state peak rate.
func (s *OnOff) ValidateLoad(load float64) error {
	if load < 0 || load > s.Peak {
		return fmt.Errorf("traffic: on/off load %v out of [0, peak=%v]", load, s.Peak)
	}
	return nil
}

// Arrivals implements Source. The draw order per node is: one transition
// variate (exit if ON, enter if OFF — a node that exits stays silent
// that cycle, a node that enters may inject immediately), then one
// arrival variate while ON.
func (s *OnOff) Arrivals(src topo.NodeID, load float64, pktFlits int, r *rng.Source) int {
	i := int(src)
	for len(s.on) <= i {
		s.on = append(s.on, false)
	}
	if !s.cValid || load != s.cLoad || pktFlits != s.cFlits {
		pOn := load / s.Peak // stationary probability of the ON state
		s.exitOn = 1 / s.AvgBurst
		if pOn < 1 {
			s.enterOn = s.exitOn * pOn / (1 - pOn)
			if s.enterOn > 1 {
				s.enterOn = 1
			}
		} else {
			s.enterOn = 1
		}
		s.pArrival = s.Peak / float64(pktFlits)
		s.cLoad, s.cFlits, s.cValid = load, pktFlits, true
	}
	if s.on[i] {
		if r.Bernoulli(s.exitOn) {
			s.on[i] = false
		}
	} else if r.Bernoulli(s.enterOn) {
		s.on[i] = true
	}
	if s.on[i] && r.Bernoulli(s.pArrival) {
		return 1
	}
	return 0
}

// Dest implements Source.
func (s *OnOff) Dest(src topo.NodeID, r *rng.Source) topo.NodeID {
	return s.Pattern.Dest(src, r)
}

// State implements Source: one byte per node, 0 = OFF, 1 = ON.
func (s *OnOff) State() ([]byte, error) {
	out := make([]byte, len(s.on))
	for i, b := range s.on {
		if b {
			out[i] = 1
		}
	}
	return out, nil
}

// SetState implements Source. nil resets every node to OFF.
func (s *OnOff) SetState(b []byte) error {
	if b == nil {
		for i := range s.on {
			s.on[i] = false
		}
		return nil
	}
	on := make([]bool, len(b))
	for i, v := range b {
		switch v {
		case 0:
		case 1:
			on[i] = true
		default:
			return fmt.Errorf("traffic: on/off state byte %d is %d, want 0 or 1", i, v)
		}
	}
	s.on = on
	return nil
}
