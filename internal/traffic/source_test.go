package traffic

import (
	"math"
	"testing"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

// TestSourceProperty holds every registry source to the Source contract:
// destinations stay in [0, Nodes) and the realized injection rate tracks
// the declared offered load. 16 nodes x 20k cycles at load 0.3 gives a
// binomial standard deviation of ~0.0008 on the rate, so a 3% relative
// tolerance is ~100 sigma of headroom against flakes while still
// catching any systematic rate error.
func TestSourceProperty(t *testing.T) {
	const (
		nodes  = 16
		cycles = 20000
		load   = 0.3
		flits  = 2
	)
	ctx := BuildCtx{Nodes: nodes, Seed: 9, Concentration: 4}
	master := rng.New(101)
	for _, name := range Names() {
		src, err := BuildSource(name, ctx)
		if err != nil {
			t.Fatalf("BuildSource(%q): %v", name, err)
		}
		rs := make([]*rng.Source, nodes)
		for i := range rs {
			rs[i] = master.Split()
		}
		total := 0
		for c := 0; c < cycles; c++ {
			for i := 0; i < nodes; i++ {
				k := src.Arrivals(topo.NodeID(i), load, flits, rs[i])
				if k < 0 {
					t.Fatalf("%s: Arrivals < 0", name)
				}
				for j := 0; j < k; j++ {
					total++
					d := src.Dest(topo.NodeID(i), rs[i])
					if d < 0 || int(d) >= nodes {
						t.Fatalf("%s: Dest(%d) = %d out of [0,%d)", name, i, d, nodes)
					}
				}
			}
		}
		want := load / flits // packets per node per cycle
		got := float64(total) / (nodes * cycles)
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("%s: realized packet rate %.5f, want %.5f within 3%%", name, got, want)
		}
	}
}

// TestOnOffRateAndState checks the bursty source: the long-run average
// rate matches the offered load even though the instantaneous rate
// alternates between 0 and peak, and the per-node modulation state
// round-trips through State/SetState so a restored source replays the
// identical arrival sequence.
func TestOnOffRateAndState(t *testing.T) {
	const (
		nodes  = 8
		cycles = 40000
		load   = 0.2
		peak   = 0.8
		burst  = 10.0
	)
	src, err := NewOnOff(NewUniform(nodes), peak, burst)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.ValidateLoad(peak + 0.1); err == nil {
		t.Fatal("ValidateLoad accepted load > peak")
	}
	master := rng.New(77)
	rs := make([]*rng.Source, nodes)
	for i := range rs {
		rs[i] = master.Split()
	}
	step := func(s Source) []int {
		out := make([]int, nodes)
		for i := 0; i < nodes; i++ {
			out[i] = s.Arrivals(topo.NodeID(i), load, 1, rs[i])
		}
		return out
	}
	total := 0
	for c := 0; c < cycles; c++ {
		for _, k := range step(src) {
			total += k
		}
	}
	got := float64(total) / (nodes * cycles)
	if math.Abs(got-load) > 0.05*load {
		t.Errorf("on/off realized rate %.5f, want %.5f within 5%%", got, load)
	}

	// Snapshot the workload and RNG state, run ahead, then restore both
	// and replay: the arrival sequences must match exactly.
	blob, err := src.State()
	if err != nil {
		t.Fatal(err)
	}
	rngStates := make([][4]uint64, nodes)
	for i, r := range rs {
		rngStates[i] = r.State()
	}
	var ahead [][]int
	for c := 0; c < 200; c++ {
		ahead = append(ahead, step(src))
	}
	restored, err := NewOnOff(NewUniform(nodes), peak, burst)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.SetState(blob); err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		r.SetState(rngStates[i])
	}
	for c, want := range ahead {
		got := step(restored)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replay diverged at cycle %d node %d: got %d, want %d", c, i, got[i], want[i])
			}
		}
	}

	// Corrupt state is rejected; nil resets to all-OFF.
	if err := restored.SetState([]byte{2}); err == nil {
		t.Fatal("SetState accepted a corrupt byte")
	}
	if err := restored.SetState(nil); err != nil {
		t.Fatal(err)
	}
	st, _ := restored.State()
	for i, b := range st {
		if b != 0 {
			t.Fatalf("node %d still ON after reset", i)
		}
	}
}

// TestStatelessRejectsState pins the Stateless helper contract.
func TestStatelessRejectsState(t *testing.T) {
	var s Stateless
	if b, err := s.State(); b != nil || err != nil {
		t.Fatalf("State() = %v, %v", b, err)
	}
	if err := s.SetState(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.SetState([]byte{1}); err == nil {
		t.Fatal("stateless source accepted state bytes")
	}
}
