package traffic

import (
	"testing"
	"testing/quick"

	"flatnet/internal/rng"
	"flatnet/internal/topo"
)

func TestUniformRange(t *testing.T) {
	u := NewUniform(64)
	r := rng.New(1)
	for src := topo.NodeID(0); src < 64; src++ {
		for i := 0; i < 200; i++ {
			d := u.Dest(src, r)
			if d < 0 || int(d) >= 64 {
				t.Fatalf("uniform destination %d out of range", d)
			}
		}
	}
}

func TestUniformCoversAll(t *testing.T) {
	u := NewUniform(16)
	r := rng.New(2)
	seen := make(map[topo.NodeID]bool)
	for i := 0; i < 2000; i++ {
		seen[u.Dest(0, r)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform from node 0 reached %d destinations, want 16 (self included)", len(seen))
	}
}

func TestWorstCaseGroup(t *testing.T) {
	// §3.2: node attached to router R_i sends to a random node attached to
	// router R_{i+1}.
	w := NewWorstCase(32, 32)
	r := rng.New(3)
	for src := topo.NodeID(0); src < 1024; src += 17 {
		g := int(src) / 32
		for i := 0; i < 50; i++ {
			d := w.Dest(src, r)
			if int(d)/32 != (g+1)%32 {
				t.Fatalf("src %d (group %d) sent to %d (group %d)", src, g, d, int(d)/32)
			}
		}
	}
}

func TestWorstCaseWrapsAround(t *testing.T) {
	w := NewWorstCase(4, 4)
	r := rng.New(4)
	d := w.Dest(topo.NodeID(15), r) // last group -> group 0
	if int(d)/4 != 0 {
		t.Fatalf("group 3 should wrap to group 0, got node %d", d)
	}
}

func TestBitComplementInvolution(t *testing.T) {
	b := NewBitComplement(256)
	check := func(s uint8) bool {
		src := topo.NodeID(s)
		d := b.Dest(src, nil)
		return b.Dest(d, nil) == src && int(d) == 255-int(s)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolutionAndPermutation(t *testing.T) {
	tr, err := NewTranspose(256)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topo.NodeID]bool)
	for s := 0; s < 256; s++ {
		d := tr.Dest(topo.NodeID(s), nil)
		if tr.Dest(d, nil) != topo.NodeID(s) {
			t.Fatalf("transpose not an involution at %d", s)
		}
		seen[d] = true
	}
	if len(seen) != 256 {
		t.Fatalf("transpose covered %d nodes, want 256", len(seen))
	}
	// 0b00000001 -> 0b00010000.
	if d := tr.Dest(1, nil); d != 16 {
		t.Fatalf("transpose(1) = %d, want 16", d)
	}
	if _, err := NewTranspose(100); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewTranspose(512); err == nil {
		t.Error("odd bit count accepted")
	}
}

func TestShufflePermutation(t *testing.T) {
	s, err := NewShuffle(64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[topo.NodeID]bool)
	for i := 0; i < 64; i++ {
		seen[s.Dest(topo.NodeID(i), nil)] = true
	}
	if len(seen) != 64 {
		t.Fatalf("shuffle covered %d, want 64", len(seen))
	}
	// 0b100000 -> 0b000001.
	if d := s.Dest(32, nil); d != 1 {
		t.Fatalf("shuffle(32) = %d, want 1", d)
	}
	if _, err := NewShuffle(63); err == nil {
		t.Error("non-power-of-two accepted")
	}
}

func TestTornadoHalfway(t *testing.T) {
	tor := NewTornado(4, 8)
	r := rng.New(5)
	d := tor.Dest(topo.NodeID(0), r)
	if int(d)/4 != 4 {
		t.Fatalf("tornado group 0 should target group 4, got %d", int(d)/4)
	}
	d = tor.Dest(topo.NodeID(28), r) // group 7 -> group 3
	if int(d)/4 != 3 {
		t.Fatalf("tornado group 7 should target group 3, got %d", int(d)/4)
	}
}

func TestFixed(t *testing.T) {
	f := NewFixed("rev3", []topo.NodeID{2, 1, 0})
	if f.Name() != "rev3" {
		t.Fatal("name")
	}
	for i := 0; i < 3; i++ {
		if f.Dest(topo.NodeID(i), nil) != topo.NodeID(2-i) {
			t.Fatalf("fixed table lookup wrong at %d", i)
		}
	}
}

func TestNames(t *testing.T) {
	if NewUniform(4).Name() != "uniform" {
		t.Error("uniform name")
	}
	if NewWorstCase(1, 4).Name() != "worstcase" {
		t.Error("worstcase name")
	}
	if NewBitComplement(4).Name() != "bitcomp" {
		t.Error("bitcomp name")
	}
	if NewTornado(1, 4).Name() != "tornado" {
		t.Error("tornado name")
	}
}

func TestHotspot(t *testing.T) {
	h, err := NewHotspot(64, []topo.NodeID{7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if h.Dest(3, r) == 7 {
			hits++
		}
	}
	rate := float64(hits) / draws
	// 50% explicit + ~1/64 from the uniform remainder.
	if rate < 0.45 || rate > 0.60 {
		t.Fatalf("hot rate = %.3f, want ~0.51", rate)
	}
	if _, err := NewHotspot(64, nil, 0.5); err == nil {
		t.Error("empty hot set accepted")
	}
	if _, err := NewHotspot(64, []topo.NodeID{99}, 0.5); err == nil {
		t.Error("out-of-range hot node accepted")
	}
	if _, err := NewHotspot(64, []topo.NodeID{0}, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if h.Name() != "hotspot" {
		t.Error("name")
	}
}

func TestRandPerm(t *testing.T) {
	p := NewRandPerm(64, 5)
	seen := make(map[topo.NodeID]bool)
	for i := 0; i < 64; i++ {
		d := p.Dest(topo.NodeID(i), nil)
		if seen[d] {
			t.Fatalf("destination %d repeated: not a permutation", d)
		}
		seen[d] = true
	}
	// Deterministic per seed.
	q := NewRandPerm(64, 5)
	for i := 0; i < 64; i++ {
		if p.Dest(topo.NodeID(i), nil) != q.Dest(topo.NodeID(i), nil) {
			t.Fatal("same seed gave different permutations")
		}
	}
	// Different seeds give different permutations (overwhelmingly).
	r := NewRandPerm(64, 6)
	same := 0
	for i := 0; i < 64; i++ {
		if p.Dest(topo.NodeID(i), nil) == r.Dest(topo.NodeID(i), nil) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different seeds gave identical permutations")
	}
	if p.Name() != "randperm" {
		t.Error("name")
	}
}
