// Package layout is a physical packaging model: it places every router of
// a topology into cabinets arranged on a 2-D machine-room floor (§4.2,
// Figs. 8 and 9 of the paper) and measures actual Manhattan cable lengths,
// rather than relying on the closed-form approximations (L_avg ≈ E/3 for
// the flattened butterfly, E/4 for the folded Clos, geometric for the
// hypercube). The measured lengths validate the paper's approximations and
// drive the §5.2 wire-delay comparison.
package layout

import (
	"fmt"
	"math"

	"flatnet/internal/cost"
	"flatnet/internal/topo"
)

// Point is a position on the machine-room floor, in meters.
type Point struct {
	X, Y float64
}

// Manhattan returns the Manhattan (rectilinear cable-tray) distance
// between two points — the paper's "minimal distance" metric (§5.2
// footnote 11).
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// FloorPlan arranges cabinets in a near-square grid. Cabinet depth is
// doubled to allow aisle spacing between rows (§4.3).
type FloorPlan struct {
	Cabinets int
	Cols     int
	Rows     int
	PitchX   float64 // cabinet-to-cabinet spacing along a row, meters
	PitchY   float64 // row-to-row spacing, meters
}

// NewFloorPlan lays out the given number of cabinets using the Table 3
// cabinet footprint, aiming for a square floor.
func NewFloorPlan(cabinets int, p cost.Packaging) FloorPlan {
	if cabinets < 1 {
		cabinets = 1
	}
	w, d := 0.57, 1.44 // Table 3 cabinet footprint
	d *= 2             // row spacing factor (§4.3)
	// Choose columns so the floor is as square as possible:
	// cols*w ~ rows*d with cols*rows >= cabinets.
	best := FloorPlan{Cabinets: cabinets, PitchX: w, PitchY: d}
	bestAspect := math.Inf(1)
	for cols := 1; cols <= cabinets; cols++ {
		rows := (cabinets + cols - 1) / cols
		width := float64(cols) * w
		depth := float64(rows) * d
		aspect := math.Max(width/depth, depth/width)
		if aspect < bestAspect {
			bestAspect = aspect
			best.Cols, best.Rows = cols, rows
		}
	}
	return best
}

// Center returns the floor position of cabinet i (row-major).
func (f FloorPlan) Center(i int) Point {
	col := i % f.Cols
	row := i / f.Cols
	return Point{
		X: (float64(col) + 0.5) * f.PitchX,
		Y: (float64(row) + 0.5) * f.PitchY,
	}
}

// Edge returns the longer side of the floor, comparable to the paper's
// E = sqrt(N/D).
func (f FloorPlan) Edge() float64 {
	return math.Max(float64(f.Cols)*f.PitchX, float64(f.Rows)*f.PitchY)
}

// Placement assigns every router of a topology to a cabinet.
type Placement struct {
	Plan      FloorPlan
	CabinetOf []int // router index -> cabinet index
	g         *topo.Graph
	overhead  float64 // per-cable vertical run overhead (meters)
}

// LinkLength returns the cable length of the channel leaving router r via
// output port port: zero for links within one cabinet (backplane), or the
// Manhattan cabinet distance plus overhead for inter-cabinet cables.
func (pl *Placement) LinkLength(r topo.RouterID, port int) (float64, error) {
	out := pl.g.Routers[r].Out[port]
	if out.Kind != topo.Network {
		return 0, fmt.Errorf("layout: router %d port %d is not a network channel", r, port)
	}
	a, b := pl.CabinetOf[r], pl.CabinetOf[out.Peer]
	if a == b {
		return 0, nil
	}
	return pl.Plan.Center(a).Manhattan(pl.Plan.Center(b)) + pl.overhead, nil
}

// RouterDistance returns the physical Manhattan distance between two
// routers' cabinets (no cable overhead) — the time-of-flight metric of
// §5.2.
func (pl *Placement) RouterDistance(a, b topo.RouterID) float64 {
	ca, cb := pl.CabinetOf[a], pl.CabinetOf[b]
	if ca == cb {
		return 0
	}
	return pl.Plan.Center(ca).Manhattan(pl.Plan.Center(cb))
}

// CableStats summarizes the cable lengths of every network channel.
type CableStats struct {
	Channels   int     // unidirectional network channels
	Backplane  int     // channels within one cabinet
	Cables     int     // inter-cabinet channels
	AvgLength  float64 // mean cable length over inter-cabinet channels, overhead excluded
	MaxLength  float64
	TotalMeter float64 // total cable meters (per unidirectional channel)
}

// Stats measures every network channel in the placement.
func (pl *Placement) Stats() CableStats {
	var st CableStats
	for r := range pl.g.Routers {
		for p, out := range pl.g.Routers[r].Out {
			if out.Kind != topo.Network {
				continue
			}
			st.Channels++
			l, err := pl.LinkLength(topo.RouterID(r), p)
			if err != nil {
				continue
			}
			if l == 0 {
				st.Backplane++
				continue
			}
			st.Cables++
			raw := l - pl.overhead
			st.AvgLength += raw
			st.TotalMeter += raw
			if raw > st.MaxLength {
				st.MaxLength = raw
			}
		}
	}
	if st.Cables > 0 {
		st.AvgLength /= float64(st.Cables)
	}
	return st
}

// place builds a Placement from a node-per-cabinet assignment: router r
// goes to cabinet nodeCabinet(r).
func place(g *topo.Graph, plan FloorPlan, cabinetOf []int, p cost.Packaging) *Placement {
	return &Placement{Plan: plan, CabinetOf: cabinetOf, g: g, overhead: p.CableOverhead}
}
