package layout

import (
	"math"
	"testing"

	"flatnet/internal/core"
	"flatnet/internal/cost"
	"flatnet/internal/topo"
)

func TestManhattan(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Manhattan(b); d != 7 {
		t.Fatalf("Manhattan = %v, want 7", d)
	}
	if d := b.Manhattan(a); d != 7 {
		t.Fatal("Manhattan not symmetric")
	}
	if d := a.Manhattan(a); d != 0 {
		t.Fatal("self distance not zero")
	}
}

func TestFloorPlanNearSquare(t *testing.T) {
	p := cost.DefaultPackaging()
	for _, cabinets := range []int{1, 2, 8, 32, 512} {
		f := NewFloorPlan(cabinets, p)
		if f.Cols*f.Rows < cabinets {
			t.Fatalf("%d cabinets: grid %dx%d too small", cabinets, f.Cols, f.Rows)
		}
		width := float64(f.Cols) * f.PitchX
		depth := float64(f.Rows) * f.PitchY
		aspect := math.Max(width/depth, depth/width)
		if cabinets >= 8 && aspect > 2.5 {
			t.Errorf("%d cabinets: aspect %0.2f too elongated (%dx%d)", cabinets, aspect, f.Cols, f.Rows)
		}
	}
	if f := NewFloorPlan(0, p); f.Cabinets != 1 {
		t.Error("degenerate cabinet count not clamped")
	}
}

func TestFloorPlanEdgeTracksAnalyticE(t *testing.T) {
	// The measured floor edge should be within ~2x of the paper's
	// E = sqrt(N/D) for a 1024-node machine (8 cabinets).
	p := cost.DefaultPackaging()
	f := NewFloorPlan(8, p)
	analytic := p.Edge(1024)
	if f.Edge() < analytic/2 || f.Edge() > analytic*2 {
		t.Errorf("floor edge %.2f vs analytic E %.2f", f.Edge(), analytic)
	}
}

func TestPlaceFlatFlyDim1Local(t *testing.T) {
	// In a 16-ary 4-flat slice we cannot afford 64K nodes; use an 8-ary
	// 3-flat (512 nodes, 64 routers, 2 dims). Dimension-1 groups are 8
	// consecutive routers = 64 consecutive nodes, i.e. within one cabinet
	// (128 nodes): all dim-1 channels must be backplane.
	f, err := core.NewFlatFly(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	pl, err := PlaceFlatFly(f, p)
	if err != nil {
		t.Fatal(err)
	}
	g := f.Graph()
	for r := 0; r < f.NumRouters; r++ {
		for port, out := range g.Routers[r].Out {
			if out.Kind != topo.Network {
				continue
			}
			d, _ := f.DimOfPort(port)
			l, err := pl.LinkLength(topo.RouterID(r), port)
			if err != nil {
				t.Fatal(err)
			}
			if d == 1 && l != 0 {
				t.Fatalf("router %d dim-1 channel has cable length %.2f, want backplane", r, l)
			}
		}
	}
	st := pl.Stats()
	if st.Channels != f.Graph().CountChannels() {
		t.Fatalf("stats channels %d, want %d", st.Channels, f.Graph().CountChannels())
	}
	if st.Backplane == 0 || st.Cables == 0 {
		t.Fatalf("expected both backplane and cable channels: %+v", st)
	}
}

func TestPlaceFlatFlyMeasuredLavgNearAnalytic(t *testing.T) {
	// §4.2 approximates FB global cable length as E/3. The measured mean
	// over an 8-ary 3-flat should land within a factor ~2 of it.
	f, err := core.NewFlatFly(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	pl, err := PlaceFlatFly(f, p)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	analytic := pl.Plan.Edge() / 3
	if st.AvgLength < analytic/2 || st.AvgLength > analytic*2.5 {
		t.Errorf("measured Lavg %.2f vs analytic E/3 %.2f", st.AvgLength, analytic)
	}
}

func TestPlaceFoldedClosAllUplinksGlobal(t *testing.T) {
	fc, err := topo.NewFoldedClos(32, 16, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	pl, err := PlaceFoldedClos(fc, p)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Channels != 1024 {
		t.Fatalf("channels = %d, want 1024", st.Channels)
	}
	// Every uplink leaves its leaf cabinet for the central router cabinet.
	if st.Backplane != 0 {
		t.Errorf("%d uplinks stayed in-cabinet; Fig 9(a) routes all to the center", st.Backplane)
	}
	if st.AvgLength <= 0 {
		t.Error("no cable lengths measured")
	}
}

func TestPlaceHypercubeLowDimsLocal(t *testing.T) {
	h, err := topo.NewHypercube(10)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	pl, err := PlaceHypercube(h, p)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	// Dims 0-6 connect routers within one 128-node cabinet: 7 of 10 dims
	// local -> 70% of channels on backplanes.
	wantLocal := st.Channels * 7 / 10
	if st.Backplane != wantLocal {
		t.Errorf("backplane channels = %d, want %d", st.Backplane, wantLocal)
	}
}

func TestPlaceButterfly(t *testing.T) {
	b, err := topo.NewButterfly(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	pl, err := PlaceButterfly(b, p)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Channels != b.Graph().CountChannels() {
		t.Fatalf("channels = %d, want %d", st.Channels, b.Graph().CountChannels())
	}
}

func TestLinkLengthRejectsNonNetwork(t *testing.T) {
	f, err := core.NewFlatFly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceFlatFly(f, cost.DefaultPackaging())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.LinkLength(0, 0); err == nil {
		t.Error("terminal port accepted")
	}
}

func TestCompareWireDelaySection52(t *testing.T) {
	// §5.2: for local (worst-case) traffic, the folded Clos routes
	// through middle cabinets, incurring ~2x the flattened butterfly's
	// physical wire distance.
	f, err := core.NewFlatFly(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := topo.NewFoldedClos(32, 16, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := cost.DefaultPackaging()
	cmp, err := CompareWireDelay(f, fc, p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio < 1.3 {
		t.Errorf("Clos/FB wire-distance ratio = %.2f, want clearly > 1 (paper: ~2x)", cmp.Ratio)
	}
	if cmp.FlatFlyAvgMeters <= 0 || cmp.FoldedClosAvgMeters <= 0 {
		t.Errorf("degenerate distances: %+v", cmp)
	}
	// Mismatched sizes are rejected.
	small, err := topo.NewFoldedClos(8, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareWireDelay(f, small, p); err == nil {
		t.Error("mismatched node counts accepted")
	}
}
