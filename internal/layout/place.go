package layout

import (
	"fmt"

	"flatnet/internal/core"
	"flatnet/internal/cost"
	"flatnet/internal/topo"
)

// PlaceFlatFly packages a flattened butterfly per Fig. 8: consecutive
// routers (and therefore whole dimension-1 subsystems, since dimension-1
// groups are consecutive in the router index) fill consecutive cabinets,
// so dimension-1 channels stay within a cabinet or reach an adjacent one,
// while higher dimensions span the floor.
func PlaceFlatFly(f *core.FlatFly, p cost.Packaging) (*Placement, error) {
	routersPerCabinet := p.NodesPerCabinet / f.K
	if routersPerCabinet < 1 {
		routersPerCabinet = 1
	}
	cabinets := (f.NumRouters + routersPerCabinet - 1) / routersPerCabinet
	plan := NewFloorPlan(cabinets, p)
	cab := make([]int, f.NumRouters)
	for r := range cab {
		cab[r] = r / routersPerCabinet
	}
	return place(f.Graph(), plan, cab, p), nil
}

// PlaceFoldedClos packages a folded Clos per Fig. 9(a): leaf routers fill
// cabinets with their terminals; every middle router lives in dedicated
// router cabinets at the center of the floor, so every uplink is a global
// cable to the center.
func PlaceFoldedClos(fc *topo.FoldedClos, p cost.Packaging) (*Placement, error) {
	leavesPerCabinet := p.NodesPerCabinet / fc.Terminals
	if leavesPerCabinet < 1 {
		leavesPerCabinet = 1
	}
	leafCabinets := (fc.Leaves + leavesPerCabinet - 1) / leavesPerCabinet
	// One router cabinet per 16 middles (middles are routers only).
	midCabinets := (fc.Middles + 15) / 16
	plan := NewFloorPlan(leafCabinets+midCabinets, p)
	cab := make([]int, fc.NumRouters)
	// The middle cabinets take the central grid slots; leaves fill the rest.
	centerStart := leafCabinets / 2
	leafSlot := func(i int) int {
		if i < centerStart {
			return i
		}
		return i + midCabinets
	}
	for l := 0; l < fc.Leaves; l++ {
		cab[l] = leafSlot(l / leavesPerCabinet)
	}
	for m := 0; m < fc.Middles; m++ {
		cab[fc.MiddleRouter(m)] = centerStart + m/16
	}
	return place(fc.Graph(), plan, cab, p), nil
}

// PlaceHypercube packages a binary hypercube per Fig. 9(b): consecutive
// routers fill cabinets, so the low dimensions stay on backplanes and
// each higher dimension spans a geometrically growing slice of the floor.
func PlaceHypercube(h *topo.Hypercube, p cost.Packaging) (*Placement, error) {
	perCabinet := p.NodesPerCabinet
	cabinets := (h.NumRouters + perCabinet - 1) / perCabinet
	plan := NewFloorPlan(cabinets, p)
	cab := make([]int, h.NumRouters)
	for r := range cab {
		cab[r] = r / perCabinet
	}
	return place(h.Graph(), plan, cab, p), nil
}

// PlaceButterfly packages a conventional butterfly: terminal-bearing
// stage-0 and last-stage routers live with their nodes; middle stages are
// placed round-robin across the same cabinets (their channels all span
// the floor regardless).
func PlaceButterfly(b *topo.Butterfly, p cost.Packaging) (*Placement, error) {
	nodesPerRouter := b.K
	routersPerCabinet := p.NodesPerCabinet / nodesPerRouter
	if routersPerCabinet < 1 {
		routersPerCabinet = 1
	}
	cabinets := (b.RoutersPerStage + routersPerCabinet - 1) / routersPerCabinet
	plan := NewFloorPlan(cabinets, p)
	cab := make([]int, b.NumRouters)
	for r := range cab {
		_, pos := b.StageOf(topo.RouterID(r))
		cab[r] = pos / routersPerCabinet
	}
	return place(b.Graph(), plan, cab, p), nil
}

// WireDelayComparison is the §5.2 study: the physical distance a packet
// covers under each topology's routing for local (worst-case pattern)
// traffic. The flattened butterfly takes the minimal Manhattan route; the
// folded Clos must detour through the central router cabinets, roughly
// doubling the global wire delay for local traffic.
type WireDelayComparison struct {
	FlatFlyAvgMeters    float64 // source router -> next router, direct
	FoldedClosAvgMeters float64 // source leaf -> middle -> destination leaf
	Ratio               float64 // Clos / FlatFly (paper: ~2x for local traffic)
}

// CompareWireDelay evaluates the worst-case-pattern physical distances on
// a flattened butterfly and a folded Clos of the same node count.
func CompareWireDelay(f *core.FlatFly, fc *topo.FoldedClos, p cost.Packaging) (WireDelayComparison, error) {
	if f.NumNodes != fc.NumNodes {
		return WireDelayComparison{}, fmt.Errorf("layout: node counts differ (%d vs %d)", f.NumNodes, fc.NumNodes)
	}
	pf, err := PlaceFlatFly(f, p)
	if err != nil {
		return WireDelayComparison{}, err
	}
	pc, err := PlaceFoldedClos(fc, p)
	if err != nil {
		return WireDelayComparison{}, err
	}
	var out WireDelayComparison
	// Worst-case pattern: router i sends to router i+1 (the FB's local
	// adversary). FB distance: direct. Clos distance: leaf -> middle ->
	// leaf, averaged over middles.
	for r := 0; r < f.NumRouters; r++ {
		next := (r + 1) % f.NumRouters
		out.FlatFlyAvgMeters += pf.RouterDistance(topo.RouterID(r), topo.RouterID(next))
		var viaMiddle float64
		for m := 0; m < fc.Middles; m++ {
			mid := fc.MiddleRouter(m)
			viaMiddle += pc.RouterDistance(topo.RouterID(r), mid) +
				pc.RouterDistance(mid, topo.RouterID(next))
		}
		out.FoldedClosAvgMeters += viaMiddle / float64(fc.Middles)
	}
	out.FlatFlyAvgMeters /= float64(f.NumRouters)
	out.FoldedClosAvgMeters /= float64(f.NumRouters)
	if out.FlatFlyAvgMeters > 0 {
		out.Ratio = out.FoldedClosAvgMeters / out.FlatFlyAvgMeters
	}
	return out, nil
}
