package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"flatnet/internal/sweep"
)

// TestFig4aParallelByteIdentical is the determinism regression for the
// sweep engine: a parallel Fig. 4(a) run (quick scale) must produce
// byte-identical series to the sequential path — same latencies, same
// saturation markers, same saturation throughputs, in the same order.
func TestFig4aParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale simulation in -short mode")
	}
	s := Quick()
	seq, err := Fig4("UR", s) // nil engine: sequential reference
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig4On(&sweep.Engine{Workers: 6}, "UR", s)
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	parBytes, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, parBytes) {
		t.Errorf("parallel Fig 4a diverged from sequential:\nseq %s\npar %s", seqBytes, parBytes)
	}
}

// TestFig4aCachedRerunSimulatesNothing: a warm cache must serve the
// whole figure with zero simulations, and the served results must match
// the cold run exactly.
func TestFig4aCachedRerunSimulatesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale simulation in -short mode")
	}
	s := Quick()
	s.Loads = []float64{0.3, 0.7} // trimmed: cache behavior, not curve shape
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	cold, err := sweep.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	coldEng := &sweep.Engine{Workers: 4, Cache: cold}
	first, err := Fig4On(coldEng, "UR", s)
	if err != nil {
		t.Fatal(err)
	}
	cold.Close()
	if st := coldEng.Stats(); st.Simulated == 0 {
		t.Fatalf("cold run simulated nothing: %+v", st)
	}

	warm, err := sweep.OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmEng := &sweep.Engine{Workers: 4, Cache: warm}
	second, err := Fig4On(warmEng, "UR", s)
	if err != nil {
		t.Fatal(err)
	}
	if st := warmEng.Stats(); st.Simulated != 0 {
		t.Errorf("warm re-run executed %d simulations, want 0 (%+v)", st.Simulated, st)
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Errorf("cached figure differs from computed figure")
	}
}
