package experiments

import (
	"testing"
)

func TestFig4WCHeadlines(t *testing.T) {
	// The central claim of Fig 4(b): minimal routing collapses to ~1/k on
	// the worst-case pattern, non-minimal algorithms reach ~(k-1)/2k.
	s := Quick()
	series, err := Fig4("WC", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("expected 5 algorithms, got %d", len(series))
	}
	byName := map[string]AlgSeries{}
	for _, a := range series {
		byName[a.Algorithm] = a
	}
	min := byName["MIN AD"].SaturationThroughput
	if min < 0.04 || min > 0.10 {
		t.Errorf("MIN AD WC sat = %.3f, want ~1/16", min)
	}
	for _, name := range []string{"VAL", "UGAL", "UGAL-S", "CLOS AD"} {
		if got := byName[name].SaturationThroughput; got < 0.35 {
			t.Errorf("%s WC sat = %.3f, want ~0.47", name, got)
		}
	}
	// Each series has one point per load.
	for _, a := range series {
		if len(a.Points) != len(s.Loads) {
			t.Errorf("%s: %d points, want %d", a.Algorithm, len(a.Points), len(s.Loads))
		}
	}
}

func TestFig4URHeadlines(t *testing.T) {
	series, err := Fig4("UR", Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range series {
		switch a.Algorithm {
		case "VAL":
			if a.SaturationThroughput > 0.6 {
				t.Errorf("VAL UR sat = %.3f, should be capped near 50%%", a.SaturationThroughput)
			}
		default:
			if a.SaturationThroughput < 0.85 {
				t.Errorf("%s UR sat = %.3f, want ~1.0", a.Algorithm, a.SaturationThroughput)
			}
		}
	}
}

func TestFig4RejectsUnknownPattern(t *testing.T) {
	if _, err := Fig4("bogus", Quick()); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestFig5Shape(t *testing.T) {
	s := Quick()
	series, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BatchSeries{}
	for _, a := range series {
		byName[a.Algorithm] = a
	}
	// Greedy UGAL is worst at the smallest batch; CLOS AD is best.
	ugal := byName["UGAL"].Points[0].NormalizedLatency
	ugalS := byName["UGAL-S"].Points[0].NormalizedLatency
	clos := byName["CLOS AD"].Points[0].NormalizedLatency
	if ugal <= ugalS || clos > ugalS {
		t.Errorf("small-batch ordering wrong: UGAL %.2f, UGAL-S %.2f, CLOS AD %.2f", ugal, ugalS, clos)
	}
	// Normalized latency decreases toward 1/throughput as batches grow.
	for _, a := range series {
		first := a.Points[0].NormalizedLatency
		last := a.Points[len(a.Points)-1].NormalizedLatency
		if last > first {
			t.Errorf("%s: normalized latency grew with batch size (%.2f -> %.2f)", a.Algorithm, first, last)
		}
	}
}

func TestFig6Headlines(t *testing.T) {
	ur, err := Fig6("UR", Quick())
	if err != nil {
		t.Fatal(err)
	}
	wc, err := Fig6("WC", Quick())
	if err != nil {
		t.Fatal(err)
	}
	urBy := map[string]TopoSeries{}
	for _, s := range ur {
		urBy[s.Algorithm] = s
	}
	wcBy := map[string]TopoSeries{}
	for _, s := range wc {
		wcBy[s.Algorithm] = s
	}
	// Fig 6(a): tapered folded Clos capped at ~50% on UR; FB ~100%.
	if got := urBy["adaptive sequential"].SaturationThroughput; got < 0.40 || got > 0.62 {
		t.Errorf("Clos UR sat = %.3f, want ~0.5", got)
	}
	if got := urBy["CLOS AD"].SaturationThroughput; got < 0.85 {
		t.Errorf("FB UR sat = %.3f, want ~1.0", got)
	}
	// Fig 6(b): butterfly collapses to ~1/k; FB and Clos ~50%.
	if got := wcBy["destination"].SaturationThroughput; got > 0.12 {
		t.Errorf("butterfly WC sat = %.3f, want ~1/16", got)
	}
	if got := wcBy["CLOS AD"].SaturationThroughput; got < 0.40 {
		t.Errorf("FB WC sat = %.3f, want ~0.5", got)
	}
	if got := wcBy["adaptive sequential"].SaturationThroughput; got < 0.40 {
		t.Errorf("Clos WC sat = %.3f, want ~0.5", got)
	}
	// Hypercube zero-load latency well above the FB's (diameter).
	fbLat := urBy["CLOS AD"].Points[0].AvgLatency
	hcLat := urBy["e-cube"].Points[0].AvgLatency
	if hcLat < 1.5*fbLat {
		t.Errorf("hypercube latency %.2f should be well above FB %.2f", hcLat, fbLat)
	}
}

func TestFig12VAL(t *testing.T) {
	series, err := Fig12("VAL", 256, []float64{0.1}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 3 {
		t.Fatalf("expected >= 3 configurations of N=256, got %d", len(series))
	}
	// Throughput stays ~constant at ~50% across dimensionality; latency
	// rises with n'.
	for _, c := range series {
		if c.SaturationThroughput < 0.35 || c.SaturationThroughput > 0.60 {
			t.Errorf("VAL k=%d sat = %.3f, want ~0.5", c.Config.K, c.SaturationThroughput)
		}
	}
	for i := 1; i < len(series); i++ {
		if series[i].Points[0].AvgLatency <= series[i-1].Points[0].AvgLatency {
			t.Errorf("latency should rise with n': %.2f (n'=%d) vs %.2f (n'=%d)",
				series[i].Points[0].AvgLatency, series[i].Config.NPrime,
				series[i-1].Points[0].AvgLatency, series[i-1].Config.NPrime)
		}
	}
}

func TestFig12MINAD(t *testing.T) {
	series, err := Fig12("MIN AD", 256, []float64{0.2}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 12(b): with 64 flits per physical channel split across n' VCs
	// and long (16-cycle) channels, the low-dimensionality configurations
	// keep near-full throughput while the highest-n' configuration is
	// degraded — its per-VC buffers no longer cover the credit round
	// trip (the paper reports ~20% degradation from n'=1 to n'=5).
	first := series[0]
	last := series[len(series)-1]
	if first.SaturationThroughput < 0.85 {
		t.Errorf("MIN AD n'=%d sat = %.3f, want ~1.0", first.Config.NPrime, first.SaturationThroughput)
	}
	if last.SaturationThroughput > 0.9*first.SaturationThroughput {
		t.Errorf("highest n' (%d) sat = %.3f should be degraded vs n'=1 (%.3f)",
			last.Config.NPrime, last.SaturationThroughput, first.SaturationThroughput)
	}
	if last.SaturationThroughput < 0.35 {
		t.Errorf("highest n' sat = %.3f implausibly low", last.SaturationThroughput)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Points[0].AvgLatency <= series[i-1].Points[0].AvgLatency {
			t.Errorf("latency should rise with n'")
		}
	}
}

func TestFig12RejectsBadInputs(t *testing.T) {
	if _, err := Fig12("bogus", 256, []float64{0.1}, Quick()); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Fig12("VAL", 17, []float64{0.1}, Quick()); err == nil {
		t.Error("size with no configurations accepted")
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{Full(), Quick()} {
		if s.K < 2 || s.N < 2 || s.Warmup <= 0 || s.Measure <= 0 || len(s.Loads) == 0 || len(s.Batches) == 0 {
			t.Errorf("scale %+v is degenerate", s)
		}
		f, err := s.flatFly()
		if err != nil {
			t.Fatal(err)
		}
		if f.NumNodes != pow(s.K, s.N) {
			t.Errorf("scale network size mismatch")
		}
	}
}

func pow(k, n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= k
	}
	return p
}

func TestExperimentsDeterministic(t *testing.T) {
	// An entire Fig 4 experiment must replay bit-identically for a given
	// scale: same latencies, same saturation throughputs.
	s := Quick()
	s.Loads = []float64{0.3, 0.7} // trim for speed
	a, err := Fig4("WC", s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4("WC", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].SaturationThroughput != b[i].SaturationThroughput {
			t.Errorf("%s: saturation %v vs %v", a[i].Algorithm,
				a[i].SaturationThroughput, b[i].SaturationThroughput)
		}
		for j := range a[i].Points {
			if a[i].Points[j].AvgLatency != b[i].Points[j].AvgLatency {
				t.Errorf("%s load %.2f: latency %v vs %v", a[i].Algorithm,
					a[i].Points[j].Load, a[i].Points[j].AvgLatency, b[i].Points[j].AvgLatency)
			}
		}
	}
}
