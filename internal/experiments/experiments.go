// Package experiments defines the paper's evaluation experiments — one
// entry per table and figure — at full (paper-scale) or quick (smoke)
// scale. Each simulation experiment is expressed as a list of
// independent sweep.Job specs executed by a sweep.Engine, so figures can
// run sequentially, in parallel, or against a warm result cache without
// changing their output. cmd/paperfigs renders their results to files;
// the repository benchmarks execute them under testing.B; tests assert
// their headline shapes.
package experiments

import (
	"context"
	"fmt"

	"flatnet/internal/core"
	"flatnet/internal/sim"
	"flatnet/internal/sweep"
	"flatnet/internal/topo"
)

// Scale selects the fidelity of the simulation experiments.
type Scale struct {
	// K and N define the k-ary n-flat under test (the paper's §3.2
	// network is the 32-ary 2-flat, N = 1024).
	K, N int
	// Warmup, Measure and MaxCycles parameterize each load point.
	Warmup, Measure, MaxCycles int
	// Loads is the offered-load sweep for latency curves.
	Loads []float64
	// Batches is the batch-size sweep for Fig. 5.
	Batches []int
	// Seed drives all randomness.
	Seed uint64
	// SimWorkers is the per-simulation cycle-core worker count
	// (sweep.Job.Workers) every job of the scale runs with. Results are
	// bit-identical at any count; 0 or 1 runs each simulation
	// sequentially.
	SimWorkers int
}

// Full returns the paper-scale configuration: the 32-ary 2-flat
// (N = 1024, k' = 63) of §3.2.
func Full() Scale {
	return Scale{
		K: 32, N: 2,
		Warmup: 2000, Measure: 2000, MaxCycles: 30000,
		Loads:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98},
		Batches: []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		Seed:    1,
	}
}

// Quick returns a reduced-scale configuration (16-ary 2-flat, short
// windows) for smoke runs and CI.
func Quick() Scale {
	return Scale{
		K: 16, N: 2,
		Warmup: 400, Measure: 400, MaxCycles: 4000,
		Loads:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Batches: []int{2, 8, 32},
		Seed:    1,
	}
}

func (s Scale) flatFly() (*core.FlatFly, error) { return core.NewFlatFly(s.K, s.N) }

// job returns the Scale's base flattened-butterfly job: §3.2 simulator
// configuration, this scale's windows and seed.
func (s Scale) job(alg, pattern string) sweep.Job {
	return sweep.Job{
		Net: "flatfly", K: s.K, N: s.N,
		Alg: alg, Pattern: pattern,
		Warmup: s.Warmup, Measure: s.Measure, MaxCycles: s.MaxCycles,
		Seed: s.Seed, BufPerPort: 32,
		Workers: s.SimWorkers,
	}
}

// seqEngine returns the engine figures run on when the caller does not
// supply one: a single worker, no cache — the sequential reference path.
func seqEngine(eng *sweep.Engine) *sweep.Engine {
	if eng != nil {
		return eng
	}
	return &sweep.Engine{Workers: 1}
}

// flatFlyAlgs lists the paper's five routing algorithms (Fig. 4 order).
var flatFlyAlgs = []string{"MIN AD", "VAL", "UGAL", "UGAL-S", "CLOS AD"}

// AlgSeries is one routing algorithm's latency-versus-load curve.
type AlgSeries struct {
	Algorithm string
	Points    []sim.LoadPointResult
	// SaturationThroughput is the accepted rate at full offered load.
	SaturationThroughput float64
}

// Fig4 reproduces Figure 4 on the sequential reference engine.
func Fig4(patternName string, s Scale) ([]AlgSeries, error) {
	return Fig4On(nil, patternName, s)
}

// Fig4On reproduces Figure 4 — the five routing algorithms on the
// flattened butterfly under uniform ("UR") or worst-case ("WC") traffic —
// on the given engine (nil = sequential).
func Fig4On(eng *sweep.Engine, patternName string, s Scale) ([]AlgSeries, error) {
	if err := checkPattern(patternName); err != nil {
		return nil, err
	}
	specs := make([]sweep.SeriesSpec, len(flatFlyAlgs))
	for i, alg := range flatFlyAlgs {
		specs[i] = sweep.SeriesSpec{Base: s.job(alg, patternName), Loads: s.Loads, Saturation: true}
	}
	res, err := seqEngine(eng).RunSeries(context.Background(), specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	out := make([]AlgSeries, len(flatFlyAlgs))
	for i, alg := range flatFlyAlgs {
		out[i] = AlgSeries{Algorithm: alg, Points: res[i].Points, SaturationThroughput: res[i].SaturationThroughput}
	}
	return out, nil
}

// checkPattern validates the pattern names the figures accept, so a typo
// fails before any jobs are scheduled.
func checkPattern(name string) error {
	switch name {
	case "uniform", "UR", "worstcase", "WC":
		return nil
	default:
		return fmt.Errorf("experiments: unknown pattern %q", name)
	}
}

// BatchSeries is one algorithm's Fig. 5 dynamic-response curve.
type BatchSeries struct {
	Algorithm string
	Points    []sim.BatchResult
}

// Fig5 reproduces Figure 5 on the sequential reference engine.
func Fig5(s Scale) ([]BatchSeries, error) { return Fig5On(nil, s) }

// Fig5On reproduces Figure 5: batch completion latency normalized to
// batch size, on the worst-case pattern, for the four load-balancing
// algorithms.
func Fig5On(eng *sweep.Engine, s Scale) ([]BatchSeries, error) {
	algs := flatFlyAlgs[1:] // all but MIN AD
	var jobs []sweep.Job
	for _, alg := range algs {
		for _, b := range s.Batches {
			j := s.job(alg, "WC")
			j.Mode = sweep.ModeBatch
			j.BatchSize = b
			j.MaxCycles = 0 // RunBatch's own default bound
			jobs = append(jobs, j)
		}
	}
	results, err := seqEngine(eng).Run(context.Background(), jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	out := make([]BatchSeries, len(algs))
	for i, alg := range algs {
		bs := BatchSeries{Algorithm: alg}
		for bi := range s.Batches {
			bs.Points = append(bs.Points, results[i*len(s.Batches)+bi].Batch)
		}
		out[i] = bs
	}
	return out, nil
}

// TopoSeries is one topology's Fig. 6 curve.
type TopoSeries struct {
	Topology             string
	Algorithm            string
	Points               []sim.LoadPointResult
	SaturationThroughput float64
}

// Fig6 reproduces Figure 6 on the sequential reference engine.
func Fig6(patternName string, s Scale) ([]TopoSeries, error) {
	return Fig6On(nil, patternName, s)
}

// Fig6On reproduces Figure 6: flattened butterfly (CLOS AD), conventional
// butterfly (destination), folded Clos (adaptive sequential, 2:1 taper for
// equal bisection) and hypercube (e-cube) under uniform or worst-case
// traffic, with bisection bandwidth held constant (Table 1).
func Fig6On(eng *sweep.Engine, patternName string, s Scale) ([]TopoSeries, error) {
	if err := checkPattern(patternName); err != nil {
		return nil, err
	}
	f, err := s.flatFly()
	if err != nil {
		return nil, err
	}
	n := f.NumNodes
	dims := 0
	for c := 1; c < n; c <<= 1 {
		dims++
	}
	base := s.job("", patternName)
	// Every topology sees the worst-case pattern at the flattened
	// butterfly's concentration so the comparison is like-for-like.
	base.Conc = f.K
	type entry struct {
		topoName string
		mut      func(j *sweep.Job)
	}
	entries := []entry{
		{fmt.Sprintf("%d-ary %d-flat", s.K, s.N), func(j *sweep.Job) {
			j.Alg = "CLOS AD"
		}},
		{fmt.Sprintf("%d-ary %d-fly", s.K, s.N), func(j *sweep.Job) {
			j.Net, j.Alg = "butterfly", "destination"
		}},
		{"folded Clos", func(j *sweep.Job) {
			j.Net, j.Alg = "foldedclos", "adaptive sequential"
			j.K, j.N = f.K, 0
			j.Uplinks, j.Leaves, j.Middles = f.K/2, f.NumRouters, maxInt(1, f.K/4)
		}},
		{fmt.Sprintf("%d-cube", dims), func(j *sweep.Job) {
			j.Net, j.Alg = "hypercube", "e-cube"
			j.K, j.N = 0, dims
		}},
	}
	specs := make([]sweep.SeriesSpec, len(entries))
	for i, e := range entries {
		j := base
		e.mut(&j)
		specs[i] = sweep.SeriesSpec{Base: j, Loads: s.Loads, Saturation: true}
	}
	res, err := seqEngine(eng).RunSeries(context.Background(), specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig6: %w", err)
	}
	// Topology display names come from the constructors so the figure
	// labels match the rest of the repo.
	names, algNames, err := fig6Names(s, f, dims)
	if err != nil {
		return nil, err
	}
	out := make([]TopoSeries, len(entries))
	for i := range entries {
		out[i] = TopoSeries{
			Topology:             names[i],
			Algorithm:            algNames[i],
			Points:               res[i].Points,
			SaturationThroughput: res[i].SaturationThroughput,
		}
	}
	return out, nil
}

// fig6Names reproduces the display names the topology and routing
// constructors report, without building simulation state.
func fig6Names(s Scale, f *core.FlatFly, dims int) (topoNames, algNames []string, err error) {
	bf, err := topo.NewButterfly(s.K, s.N)
	if err != nil {
		return nil, nil, err
	}
	fc, err := topo.NewFoldedClos(f.K, f.K/2, f.NumRouters, maxInt(1, f.K/4))
	if err != nil {
		return nil, nil, err
	}
	hc, err := topo.NewHypercube(dims)
	if err != nil {
		return nil, nil, err
	}
	topoNames = []string{f.Name(), bf.Name(), fc.Name(), hc.Name()}
	algNames = []string{"CLOS AD", "destination", "adaptive sequential", "e-cube"}
	return topoNames, algNames, nil
}

// ConfigSeries is one (k, n') configuration's Fig. 12 result.
type ConfigSeries struct {
	Config               core.Config
	Points               []sim.LoadPointResult
	SaturationThroughput float64
}

// Fig12 reproduces Figure 12 on the sequential reference engine.
func Fig12(alg string, nodes int, loads []float64, s Scale) ([]ConfigSeries, error) {
	return Fig12On(nil, alg, nodes, loads, s)
}

// Fig12On reproduces Figure 12: the Table 4 configurations of a fixed-size
// network simulated under VAL (a) or MIN AD (b). For MIN AD the paper
// holds the total storage per physical channel at 64 flits, split over
// the n' virtual channels, so throughput degrades as n' grows. That
// effect only binds when the credit round trip exceeds the aggregate
// per-VC buffering a channel's active VCs provide, so the MIN AD study
// uses 16-cycle channels (modeling the global cables and pipelined SerDes
// of the paper's router, where 64 flits per physical channel was a
// meaningful budget); VAL uses the default 1-cycle channels. nodes
// selects the network size (the paper uses 4096).
func Fig12On(eng *sweep.Engine, alg string, nodes int, loads []float64, s Scale) ([]ConfigSeries, error) {
	if alg != "VAL" && alg != "MIN AD" {
		return nil, fmt.Errorf("experiments: fig12 supports VAL and MIN AD, not %q", alg)
	}
	cfgs := core.ConfigsForN(nodes)
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("experiments: no flattened-butterfly configurations for N=%d", nodes)
	}
	specs := make([]sweep.SeriesSpec, len(cfgs))
	for i, c := range cfgs {
		j := s.job(alg, "UR")
		j.K, j.N = c.K, c.N
		if alg == "MIN AD" {
			j.ChannelLatency = 16
			j.BufPerPort = 64 // §5.1.1: 64 flits per PC split across n' VCs
		}
		// The high-dimensionality configurations are large (up to N/2
		// routers) and some load points sit beyond saturation; bound the
		// drain so the sweep completes in reasonable time.
		j.MaxCycles = 4 * (s.Warmup + s.Measure)
		specs[i] = sweep.SeriesSpec{Base: j, Loads: loads, Saturation: true}
	}
	res, err := seqEngine(eng).RunSeries(context.Background(), specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig12: %w", err)
	}
	out := make([]ConfigSeries, len(cfgs))
	for i, c := range cfgs {
		out[i] = ConfigSeries{Config: c, Points: res[i].Points, SaturationThroughput: res[i].SaturationThroughput}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
