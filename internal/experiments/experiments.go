// Package experiments defines the paper's evaluation experiments — one
// entry per table and figure — at full (paper-scale) or quick (smoke)
// scale. cmd/paperfigs renders their results to files; the repository
// benchmarks execute them under testing.B; tests assert their headline
// shapes.
package experiments

import (
	"fmt"

	"flatnet/internal/core"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Scale selects the fidelity of the simulation experiments.
type Scale struct {
	// K and N define the k-ary n-flat under test (the paper's §3.2
	// network is the 32-ary 2-flat, N = 1024).
	K, N int
	// Warmup, Measure and MaxCycles parameterize each load point.
	Warmup, Measure, MaxCycles int
	// Loads is the offered-load sweep for latency curves.
	Loads []float64
	// Batches is the batch-size sweep for Fig. 5.
	Batches []int
	// Seed drives all randomness.
	Seed uint64
}

// Full returns the paper-scale configuration: the 32-ary 2-flat
// (N = 1024, k' = 63) of §3.2.
func Full() Scale {
	return Scale{
		K: 32, N: 2,
		Warmup: 2000, Measure: 2000, MaxCycles: 30000,
		Loads:   []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98},
		Batches: []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		Seed:    1,
	}
}

// Quick returns a reduced-scale configuration (16-ary 2-flat, short
// windows) for smoke runs and CI.
func Quick() Scale {
	return Scale{
		K: 16, N: 2,
		Warmup: 400, Measure: 400, MaxCycles: 4000,
		Loads:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Batches: []int{2, 8, 32},
		Seed:    1,
	}
}

func (s Scale) flatFly() (*core.FlatFly, error) { return core.NewFlatFly(s.K, s.N) }

func (s Scale) config() sim.Config {
	return sim.Config{Seed: s.Seed, BufPerPort: 32}
}

func (s Scale) runConfig(load float64, p traffic.Pattern) sim.RunConfig {
	return sim.RunConfig{
		Load: load, Pattern: p,
		Warmup: s.Warmup, Measure: s.Measure, MaxCycles: s.MaxCycles,
	}
}

// pattern builds the named workload for a flattened butterfly.
func (s Scale) pattern(name string, f *core.FlatFly) (traffic.Pattern, error) {
	switch name {
	case "uniform", "UR":
		return traffic.NewUniform(f.NumNodes), nil
	case "worstcase", "WC":
		return traffic.NewWorstCase(f.K, f.NumRouters), nil
	default:
		return nil, fmt.Errorf("experiments: unknown pattern %q", name)
	}
}

// AlgSeries is one routing algorithm's latency-versus-load curve.
type AlgSeries struct {
	Algorithm string
	Points    []sim.LoadPointResult
	// SaturationThroughput is the accepted rate at full offered load.
	SaturationThroughput float64
}

// Fig4 reproduces Figure 4: the five routing algorithms on the flattened
// butterfly under uniform ("UR") or worst-case ("WC") traffic.
func Fig4(patternName string, s Scale) ([]AlgSeries, error) {
	f, err := s.flatFly()
	if err != nil {
		return nil, err
	}
	p, err := s.pattern(patternName, f)
	if err != nil {
		return nil, err
	}
	algs := []sim.Algorithm{
		routing.NewMinAD(f), routing.NewValiant(f),
		routing.NewUGAL(f), routing.NewUGALS(f), routing.NewClosAD(f),
	}
	out := make([]AlgSeries, 0, len(algs))
	for _, alg := range algs {
		pts, err := sim.LoadSweep(f.Graph(), alg, s.config(), s.runConfig(0, p), s.Loads)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 %s: %w", alg.Name(), err)
		}
		sat, err := sim.SaturationThroughput(f.Graph(), alg, s.config(), p, s.Warmup, s.Measure)
		if err != nil {
			return nil, err
		}
		out = append(out, AlgSeries{Algorithm: alg.Name(), Points: pts, SaturationThroughput: sat})
	}
	return out, nil
}

// BatchSeries is one algorithm's Fig. 5 dynamic-response curve.
type BatchSeries struct {
	Algorithm string
	Points    []sim.BatchResult
}

// Fig5 reproduces Figure 5: batch completion latency normalized to batch
// size, on the worst-case pattern, for the four load-balancing
// algorithms.
func Fig5(s Scale) ([]BatchSeries, error) {
	f, err := s.flatFly()
	if err != nil {
		return nil, err
	}
	wc := traffic.NewWorstCase(f.K, f.NumRouters)
	algs := []sim.Algorithm{
		routing.NewValiant(f), routing.NewUGAL(f), routing.NewUGALS(f), routing.NewClosAD(f),
	}
	out := make([]BatchSeries, 0, len(algs))
	for _, alg := range algs {
		bs := BatchSeries{Algorithm: alg.Name()}
		for _, b := range s.Batches {
			r, err := sim.RunBatch(f.Graph(), alg, s.config(), wc, b, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5 %s: %w", alg.Name(), err)
			}
			bs.Points = append(bs.Points, r)
		}
		out = append(out, bs)
	}
	return out, nil
}

// TopoSeries is one topology's Fig. 6 curve.
type TopoSeries struct {
	Topology             string
	Algorithm            string
	Points               []sim.LoadPointResult
	SaturationThroughput float64
}

// Fig6 reproduces Figure 6: flattened butterfly (CLOS AD), conventional
// butterfly (destination), folded Clos (adaptive sequential, 2:1 taper for
// equal bisection) and hypercube (e-cube) under uniform or worst-case
// traffic, with bisection bandwidth held constant (Table 1).
func Fig6(patternName string, s Scale) ([]TopoSeries, error) {
	f, err := s.flatFly()
	if err != nil {
		return nil, err
	}
	n := f.NumNodes
	bf, err := topo.NewButterfly(s.K, s.N)
	if err != nil {
		return nil, err
	}
	fc, err := topo.NewFoldedClos(f.K, f.K/2, f.NumRouters, maxInt(1, f.K/4))
	if err != nil {
		return nil, err
	}
	dims := 0
	for c := 1; c < n; c <<= 1 {
		dims++
	}
	hc, err := topo.NewHypercube(dims)
	if err != nil {
		return nil, err
	}
	type entry struct {
		g    *topo.Graph
		name string
		alg  sim.Algorithm
		conc int // worst-case pattern concentration
	}
	entries := []entry{
		{f.Graph(), f.Name(), routing.NewClosAD(f), f.K},
		{bf.Graph(), bf.Name(), routing.NewButterflyDest(bf), f.K},
		{fc.Graph(), fc.Name(), routing.NewFoldedClosAdaptive(fc), f.K},
		{hc.Graph(), hc.Name(), routing.NewECube(hc), f.K},
	}
	out := make([]TopoSeries, 0, len(entries))
	for _, e := range entries {
		var p traffic.Pattern
		switch patternName {
		case "uniform", "UR":
			p = traffic.NewUniform(n)
		case "worstcase", "WC":
			p = traffic.NewWorstCase(e.conc, n/e.conc)
		default:
			return nil, fmt.Errorf("experiments: unknown pattern %q", patternName)
		}
		pts, err := sim.LoadSweep(e.g, e.alg, s.config(), s.runConfig(0, p), s.Loads)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", e.name, err)
		}
		sat, err := sim.SaturationThroughput(e.g, e.alg, s.config(), p, s.Warmup, s.Measure)
		if err != nil {
			return nil, err
		}
		out = append(out, TopoSeries{Topology: e.name, Algorithm: e.alg.Name(), Points: pts, SaturationThroughput: sat})
	}
	return out, nil
}

// ConfigSeries is one (k, n') configuration's Fig. 12 result.
type ConfigSeries struct {
	Config               core.Config
	Points               []sim.LoadPointResult
	SaturationThroughput float64
}

// Fig12 reproduces Figure 12: the Table 4 configurations of a fixed-size
// network simulated under VAL (a) or MIN AD (b). For MIN AD the paper
// holds the total storage per physical channel at 64 flits, split over
// the n' virtual channels, so throughput degrades as n' grows. That
// effect only binds when the credit round trip exceeds the aggregate
// per-VC buffering a channel's active VCs provide, so the MIN AD study
// uses 16-cycle channels (modeling the global cables and pipelined SerDes
// of the paper's router, where 64 flits per physical channel was a
// meaningful budget); VAL uses the default 1-cycle channels. nodes
// selects the network size (the paper uses 4096).
func Fig12(alg string, nodes int, loads []float64, s Scale) ([]ConfigSeries, error) {
	cfgs := core.ConfigsForN(nodes)
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("experiments: no flattened-butterfly configurations for N=%d", nodes)
	}
	out := make([]ConfigSeries, 0, len(cfgs))
	for _, c := range cfgs {
		var topoOpts []core.Option
		if alg == "MIN AD" {
			topoOpts = append(topoOpts, core.WithChannelLatency(16))
		}
		f, err := core.NewFlatFly(c.K, c.N, topoOpts...)
		if err != nil {
			return nil, err
		}
		var a sim.Algorithm
		cfg := s.config()
		switch alg {
		case "VAL":
			a = routing.NewValiant(f)
		case "MIN AD":
			a = routing.NewMinAD(f)
			cfg.BufPerPort = 64 // §5.1.1: 64 flits per PC split across n' VCs
		default:
			return nil, fmt.Errorf("experiments: fig12 supports VAL and MIN AD, not %q", alg)
		}
		p := traffic.NewUniform(f.NumNodes)
		rc := s.runConfig(0, p)
		// The high-dimensionality configurations are large (up to N/2
		// routers) and some load points sit beyond saturation; bound the
		// drain so the sweep completes in reasonable time.
		rc.MaxCycles = 4 * (s.Warmup + s.Measure)
		pts, err := sim.LoadSweep(f.Graph(), a, cfg, rc, loads)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig12 k=%d: %w", c.K, err)
		}
		sat, err := sim.SaturationThroughput(f.Graph(), a, cfg, p, s.Warmup, s.Measure)
		if err != nil {
			return nil, err
		}
		out = append(out, ConfigSeries{Config: c, Points: pts, SaturationThroughput: sat})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
