// Package flatnet is a library reproduction of Kim, Dally and Abts,
// "Flattened Butterfly: A Cost-Efficient Topology for High-Radix
// Networks" (ISCA 2007).
//
// It provides:
//
//   - the flattened-butterfly topology (k-ary n-flat) and the comparison
//     topologies the paper evaluates against it — conventional butterfly,
//     folded Clos, binary hypercube and generalized hypercube;
//   - a cycle-accurate flit-level network simulator with virtual-channel
//     input-queued routers, credit-based flow control, greedy/sequential
//     route allocators, Bernoulli and batch injection, and the paper's
//     warm-up/measure/drain methodology;
//   - the paper's five flattened-butterfly routing algorithms (MIN AD,
//     VAL, UGAL, UGAL-S, CLOS AD) plus per-topology baselines
//     (destination-based butterfly, adaptive folded Clos, e-cube);
//   - the §4 cost model (router, backplane/cable/repeater links, cabinet
//     packaging geometry) and the §5.3 power model;
//   - the high-radix successor topologies the flattened butterfly
//     inspired — Slim Fly (MMS diameter-2 graphs) and dragonfly — with
//     minimal, Valiant and UGAL routing, plus a graph-analytic
//     evaluation mode (AnalyzeTopology) for design-space comparisons at
//     scales cycle simulation cannot touch.
//
// The quickest way in:
//
//	ff, _ := flatnet.NewFlatFly(32, 2)            // 1024 nodes, radix 63
//	alg := flatnet.NewClosAD(ff)                  // the paper's best router
//	res, _ := flatnet.Run(ff, alg, flatnet.WithLoad(0.5))
//	fmt.Println(res.AvgLatency, res.AcceptedRate)
//
// Run's options select the traffic pattern, windows, router
// configuration and instrumentation (WithPattern, WithWarmup,
// WithMeasure, WithCheck, WithTelemetry, ...); RunLoadPoint, LoadSweep
// and RunBatch are the explicit-configuration entry points underneath.
//
// The cmd/paperfigs binary regenerates every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the index.
package flatnet

import (
	"flatnet/internal/analysis"
	"flatnet/internal/check"
	"flatnet/internal/core"
	"flatnet/internal/cost"
	"flatnet/internal/layout"
	"flatnet/internal/power"
	"flatnet/internal/routing"
	"flatnet/internal/sim"
	"flatnet/internal/telemetry"
	"flatnet/internal/topo"
	"flatnet/internal/traffic"
)

// Topology types.
type (
	// FlatFly is the paper's k-ary n-flat flattened butterfly.
	FlatFly = core.FlatFly
	// OneDimFB is the single-dimension flattened butterfly generalized to
	// arbitrary router counts (Fig. 14(b)).
	OneDimFB = core.OneDimFB
	// Butterfly is a conventional k-ary n-fly.
	Butterfly = topo.Butterfly
	// FoldedClos is a two-level folded Clos / fat tree.
	FoldedClos = topo.FoldedClos
	// Hypercube is a binary hypercube.
	Hypercube = topo.Hypercube
	// GHC is a generalized hypercube.
	GHC = topo.GHC
	// Torus is a k-ary n-cube, the low-radix baseline of §1.
	Torus = topo.Torus
	// SlimFly is the MMS diameter-2 topology (Besta & Hoefler).
	SlimFly = topo.SlimFly
	// Dragonfly is the hierarchical group topology (Kim, Dally, Scott &
	// Abts, ISCA 2008).
	Dragonfly = topo.Dragonfly
	// ParamError is the structured validation error every topology
	// constructor returns for an invalid parameter.
	ParamError = topo.ParamError
	// Topology is the interface all of the above satisfy.
	Topology = topo.Topology
	// Graph is the directed channel graph the simulator consumes.
	Graph = topo.Graph
	// NodeID identifies a terminal.
	NodeID = topo.NodeID
	// RouterID identifies a router.
	RouterID = topo.RouterID
	// FFOption configures NewFlatFly.
	FFOption = core.Option
	// FFConfig is one (k, n) flattened-butterfly configuration (Table 4).
	FFConfig = core.Config
)

// Topology constructors.
var (
	// NewFlatFly builds a k-ary n-flat.
	NewFlatFly = core.NewFlatFly
	// NewOneDimFB builds a complete-graph 1-D flattened butterfly.
	NewOneDimFB = core.NewOneDimFB
	// WithMultiplicity doubles (or more) every inter-router link (Fig 14a).
	WithMultiplicity = core.WithMultiplicity
	// WithChannelLatency sets inter-router channel latency in cycles.
	WithChannelLatency = core.WithChannelLatency
	// NewButterfly builds a k-ary n-fly.
	NewButterfly = topo.NewButterfly
	// NewDilatedButterfly builds a k-ary n-fly with replicated channels
	// (the §6 dilated-butterfly alternative).
	NewDilatedButterfly = topo.NewDilatedButterfly
	// NewFoldedClos builds a folded Clos with explicit parameters.
	NewFoldedClos = topo.NewFoldedClos
	// TaperedClosForNodes builds the §3.3 equal-bisection folded Clos.
	TaperedClosForNodes = topo.TaperedClosForNodes
	// NewHypercube builds a binary hypercube.
	NewHypercube = topo.NewHypercube
	// NewConcentratedHypercube builds a hypercube with several terminals
	// per router (the paper's footnote 10 configuration).
	NewConcentratedHypercube = topo.NewConcentratedHypercube
	// NewGHC builds a generalized hypercube.
	NewGHC = topo.NewGHC
	// NewTorus builds a k-ary n-cube.
	NewTorus = topo.NewTorus
	// NewSlimFly builds the MMS Slim Fly over GF(q) with p terminals per
	// router (p = 0 selects the balanced default).
	NewSlimFly = topo.NewSlimFly
	// SlimFlyDefaultConc is the balanced terminals-per-router for a field
	// size: ceil(k'/2).
	SlimFlyDefaultConc = topo.SlimFlyDefaultConc
	// NewDragonfly builds a dragonfly with p terminals per router, a
	// routers per group and h global channels per router (a = 0 and
	// p = 0 select the balanced a = 2h, p = h).
	NewDragonfly = topo.NewDragonfly
)

// Scaling relationships (§2.1, §5.1).
var (
	// NetworkSize returns N(k', n') for the Fig. 2 scaling curves.
	NetworkSize = core.NetworkSize
	// ConfigsForN enumerates the (k, n) configurations of a network size
	// (Table 4 for N = 4096).
	ConfigsForN = core.ConfigsForN
	// FixedRadixConfig selects the smallest dimensionality for a router
	// radix and target size (§5.1.2).
	FixedRadixConfig = core.FixedRadixConfig
	// MaxNodesForRadix returns the largest network a radix supports at a
	// given dimensionality.
	MaxNodesForRadix = core.MaxNodesForRadix
)

// Simulator types.
type (
	// Config holds router microarchitecture parameters.
	Config = sim.Config
	// RunConfig describes one open-loop measurement.
	RunConfig = sim.RunConfig
	// BurstConfig selects bursty (on/off) injection in RunConfig.
	BurstConfig = sim.BurstConfig
	// ClosedLoopConfig describes a request-reply workload.
	ClosedLoopConfig = sim.ClosedLoopConfig
	// ClosedLoopResult reports a closed-loop run.
	ClosedLoopResult = sim.ClosedLoopResult
	// LoadPointResult is one measured (load, latency, throughput) sample.
	LoadPointResult = sim.LoadPointResult
	// BatchConfig describes one Fig. 5 batch experiment.
	BatchConfig = sim.BatchConfig
	// BatchResult is one Fig. 5 batch experiment result.
	BatchResult = sim.BatchResult
	// Network is an instantiated simulation.
	Network = sim.Network
	// Packet is a single-flit packet.
	Packet = sim.Packet
	// Algorithm routes packets.
	Algorithm = sim.Algorithm
	// RouterView is the routing algorithm's view of router state.
	RouterView = sim.RouterView
	// TraceEntry is one packet arrival in a traffic trace.
	TraceEntry = sim.TraceEntry
	// ChannelLoad reports per-channel traffic for utilization analysis.
	ChannelLoad = sim.ChannelLoad
	// Transfer tracks one measured multi-packet transfer injected into a
	// live network via Network.StartTransfer — the primitive behind the
	// nocd co-simulation service (internal/nocsvc).
	Transfer = sim.Transfer
	// CollectiveConfig describes one collective schedule (all-to-all or
	// ring all-reduce) run to end-to-end completion.
	CollectiveConfig = sim.CollectiveConfig
	// CollectiveResult reports a completed collective schedule.
	CollectiveResult = sim.CollectiveResult
	// TraceScanner streams a JSONL workload trace with bounded memory;
	// feed it to Network.ReplayTrace.
	TraceScanner = sim.TraceScanner
)

// Collective kinds for CollectiveConfig.Kind.
const (
	CollectiveAllToAll  = sim.CollectiveAllToAll
	CollectiveAllReduce = sim.CollectiveAllReduce
)

// Simulator entry points.
var (
	// NewNetwork builds a simulation over a channel graph.
	NewNetwork = sim.New
	// DefaultConfig mirrors the paper's §3.2 router parameters.
	DefaultConfig = sim.DefaultConfig
	// RunLoadPoint executes the warm-up/measure/drain methodology.
	RunLoadPoint = sim.RunLoadPoint
	// LoadSweep runs RunLoadPoint across offered loads.
	LoadSweep = sim.LoadSweep
	// SaturationThroughput measures accepted rate at full offered load.
	SaturationThroughput = sim.SaturationThroughput
	// RunBatch executes the Fig. 5 batch experiment.
	RunBatch = sim.RunBatch
	// ReadTrace and WriteTrace serialize traffic traces in the legacy
	// whitespace text format.
	ReadTrace  = sim.ReadTrace
	WriteTrace = sim.WriteTrace
	// WriteWorkloadJSONL and ReadWorkloadJSONL serialize workload traces
	// in the JSONL format ({"cycle":C,"src":S,"dst":D,"size":K} lines);
	// NewTraceScanner streams one for Network.ReplayTrace without
	// holding it in memory.
	WriteWorkloadJSONL = sim.WriteTraceJSONL
	ReadWorkloadJSONL  = sim.ReadTraceJSONL
	NewTraceScanner    = sim.NewTraceScanner
	// RunCollective executes an all-to-all or ring all-reduce schedule
	// and measures its end-to-end completion cycles.
	RunCollective = sim.RunCollective
	// RunClosedLoop executes a request-reply (remote-memory-access)
	// workload with a per-node outstanding-request window.
	RunClosedLoop = sim.RunClosedLoop
	// Restore rebuilds a Network from a Network.Snapshot stream; the
	// restored network continues bit-identically to the original.
	Restore = sim.Restore
)

// Telemetry: router-pipeline probes, flit tracing and live metrics
// (see the Telemetry section of DESIGN.md). All of it is
// zero-overhead-when-off: a network without probes or a tracer attached
// pays one nil check per hook.
type (
	// ProbeConfig parameterizes AttachProbes / RunConfig.Probes.
	ProbeConfig = sim.ProbeConfig
	// Probes is a network's attached probe registry: occupancy,
	// stall/allocator counters and windowed per-channel load series.
	Probes = sim.Probes
	// ProbeChannel is one instrumented channel's windowed load view.
	ProbeChannel = sim.ProbeChannel
	// Tracer is a ring-buffered flit pipeline event tracer.
	Tracer = telemetry.Tracer
	// FlitEvent is one flit pipeline event (inject, route, VC alloc,
	// crossbar, eject).
	FlitEvent = telemetry.FlitEvent
	// TelemetryRegistry names counters and gauges for a metrics endpoint.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer is a live /debug/vars + /debug/pprof HTTP endpoint.
	TelemetryServer = telemetry.Server
)

var (
	// NewTracer builds a flit tracer retaining at most capacity events.
	NewTracer = telemetry.NewTracer
	// WriteChromeTrace and ReadChromeTrace serialize flit events in the
	// Chrome trace-event JSON format (chrome://tracing, ui.perfetto.dev);
	// the round trip is lossless.
	WriteChromeTrace = telemetry.WriteChromeTrace
	ReadChromeTrace  = telemetry.ReadChromeTrace
	// WriteTraceJSONL and ReadTraceJSONL serialize flit events as JSON
	// lines for line-oriented tools.
	WriteTraceJSONL = telemetry.WriteJSONL
	ReadTraceJSONL  = telemetry.ReadJSONL
	// NewTelemetryRegistry builds an empty named-metric registry.
	NewTelemetryRegistry = telemetry.NewRegistry
	// ServeTelemetry starts a live metrics endpoint on an address.
	ServeTelemetry = telemetry.Serve
)

// Runtime invariant sanitizer (internal/check): asserts flit
// conservation, credit round trips, virtual-channel ownership, packet
// wholeness and forward progress on every simulated cycle, without
// perturbing results. Like probes and the tracer it is
// zero-overhead-when-off.
type (
	// CheckConfig parameterizes the sanitizer (stride, watchdog window,
	// in-order checking, violation cap).
	CheckConfig = check.Config
	// CheckViolation is one recorded invariant violation with cycle and
	// channel context.
	CheckViolation = check.Violation
	// Sanitizer is an attached runtime checker.
	Sanitizer = check.Sanitizer
)

var (
	// AttachChecker installs a sanitizer on a network; call Finalize at
	// end of run for the quiescence audit.
	AttachChecker = check.Attach
	// ArmCheck hooks a sanitizer into a RunConfig (one per network the
	// run builds); the returned func reports any violations.
	ArmCheck = check.Arm
)

// Traffic patterns and workload sources (see DESIGN.md §16).
type (
	// Pattern maps sources to destinations.
	Pattern = traffic.Pattern
	// Source is a full workload source: the arrival process (when each
	// node injects) plus the destination process (where packets go).
	// Install one with Network.SetSource or Run's WithSource.
	Source = traffic.Source
	// PatternCtx parameterizes BuildPattern/BuildWorkload — network size,
	// seed, concentration for the group patterns, hot set for
	// hotspot/incast.
	PatternCtx = traffic.BuildCtx
	// UnknownPatternError reports a pattern name missing from the
	// registry, listing the known names.
	UnknownPatternError = traffic.UnknownPatternError
)

var (
	// NewUniform is benign uniform-random traffic.
	NewUniform = traffic.NewUniform
	// NewWorstCase is the §3.2 adversarial pattern (router i to i+1).
	NewWorstCase = traffic.NewWorstCase
	// NewBitComplement, NewTranspose, NewShuffle, NewTornado, NewRandPerm
	// and NewFixed are additional standard patterns.
	NewBitComplement = traffic.NewBitComplement
	NewTranspose     = traffic.NewTranspose
	NewShuffle       = traffic.NewShuffle
	NewTornado       = traffic.NewTornado
	NewRandPerm      = traffic.NewRandPerm
	NewFixed         = traffic.NewFixed
	// NewHotspot skews a fraction of uniform traffic onto a hot node set;
	// NewIncast is its many-to-one degenerate (every node to one sink).
	NewHotspot = traffic.NewHotspot
	NewIncast  = traffic.NewIncast
	// NewBernoulliSource wraps a pattern in the default memoryless
	// Bernoulli arrival process — exactly the legacy injection behavior.
	NewBernoulliSource = traffic.NewBernoulli
	// NewOnOffSource wraps a pattern in the two-state on/off (MMPP)
	// arrival process: bursts at a peak rate with the duty cycle chosen
	// so the long-run average equals the offered load.
	NewOnOffSource = traffic.NewOnOff
	// BuildPattern constructs a registry pattern by name ("uniform",
	// "hotspot", sweep short forms UR/HS/..., see PatternNames);
	// BuildWorkload wraps it in the Bernoulli arrival process.
	BuildPattern  = traffic.Build
	BuildWorkload = traffic.BuildSource
	// PatternNames lists the registry's canonical pattern names.
	PatternNames = traffic.Names
	// CanonicalPattern resolves a name or alias to its registry name;
	// PatternAliases returns the short-form alias table (UR, WC, HS, ...).
	CanonicalPattern = traffic.Canonical
	PatternAliases   = traffic.Aliases
)

// Routing algorithms.
var (
	// NewMinAD is §3.1 minimal adaptive routing.
	NewMinAD = routing.NewMinAD
	// NewValiant is §3.1 VAL.
	NewValiant = routing.NewValiant
	// NewUGAL is §3.1 UGAL with a greedy allocator.
	NewUGAL = routing.NewUGAL
	// NewUGALS is UGAL with a sequential allocator.
	NewUGALS = routing.NewUGALS
	// NewClosAD is §3.1 adaptive Clos routing on the flattened butterfly.
	NewClosAD = routing.NewClosAD
	// NewFlatFlyAlgorithm constructs any of the five by name.
	NewFlatFlyAlgorithm = routing.NewFlatFlyAlgorithm
	// NewButterflyDest is destination-based butterfly routing.
	NewButterflyDest = routing.NewButterflyDest
	// NewFoldedClosAdaptive is adaptive sequential folded-Clos routing.
	NewFoldedClosAdaptive = routing.NewFoldedClosAdaptive
	// NewECube is hypercube dimension-order routing.
	NewECube = routing.NewECube
	// NewGHCMinAdaptive is minimal adaptive GHC routing.
	NewGHCMinAdaptive = routing.NewGHCMinAdaptive
	// NewTorusDOR is dateline dimension-order torus routing.
	NewTorusDOR = routing.NewTorusDOR
	// NewSlimFlyAlgorithm constructs Slim Fly routing by name:
	// "min", "val", "ugal" or "ugal-s".
	NewSlimFlyAlgorithm = routing.NewSlimFlyAlgorithm
	// NewDragonflyAlgorithm constructs dragonfly routing by name:
	// "min", "val", "ugal" or "ugal-s".
	NewDragonflyAlgorithm = routing.NewDragonflyAlgorithm
)

// Cost and power models (§4, §5.3).
type (
	// CostModel holds the Table 2 constants.
	CostModel = cost.Model
	// Packaging holds the Table 3 constants.
	Packaging = cost.Packaging
	// CostBreakdown is a priced bill of materials.
	CostBreakdown = cost.Breakdown
	// CostComparison compares the four §4.3 topologies at one size.
	CostComparison = cost.Comparison
	// PowerModel holds the Table 5 constants.
	PowerModel = power.Model
	// PowerComparison compares per-node power at one size.
	PowerComparison = power.Comparison
	// ModernPowerComparison compares the flattened butterfly against
	// Slim Fly and dragonfly at one size.
	ModernPowerComparison = power.ModernComparison
	// BOM is a topology's bill of materials.
	BOM = cost.BOM
)

var (
	// DefaultCostModel returns the Table 2 constants.
	DefaultCostModel = cost.DefaultModel
	// DefaultPackaging returns the Table 3 constants.
	DefaultPackaging = cost.DefaultPackaging
	// DefaultPowerModel returns the Table 5 constants.
	DefaultPowerModel = power.DefaultModel
	// CompareCost prices the four topologies at one size (Fig. 11).
	CompareCost = cost.Compare
	// CostSweep prices across sizes.
	CostSweep = cost.Sweep
	// ComparePower evaluates per-node power (Fig. 15).
	ComparePower = power.Compare
	// PowerSweep evaluates power across sizes.
	PowerSweep = power.Sweep
	// FlatFlyBOMForConfig builds a bill of materials for an explicit
	// (k, n') configuration (Fig. 13).
	FlatFlyBOMForConfig = cost.FlatFlyBOMForConfig
	// FlatFlyBOM builds the standard flattened-butterfly bill of
	// materials for a node count (§5.1.2 configuration selection).
	FlatFlyBOM = cost.FlatFlyBOM
	// GHCBOM builds a generalized-hypercube bill of materials (§2.3).
	GHCBOM = cost.GHCBOM
	// DilatedButterflyBOM prices the §6 dilated-butterfly alternative.
	DilatedButterflyBOM = cost.DilatedButterflyBOM
	// FoldedClosBOM, ButterflyBOM and HypercubeBOM build the comparison
	// topologies' bills of materials.
	FoldedClosBOM = cost.FoldedClosBOM
	ButterflyBOM  = cost.ButterflyBOM
	HypercubeBOM  = cost.HypercubeBOM
	// SlimFlyBOM and DragonflyBOM build the modern comparison
	// topologies' bills of materials under the paper's packaging model.
	SlimFlyBOM   = cost.SlimFlyBOM
	DragonflyBOM = cost.DragonflyBOM
	// ComparePowerModern evaluates FB vs Slim Fly vs dragonfly per-node
	// power at one size; PowerSweepModern runs it across sizes.
	ComparePowerModern = power.CompareModern
	PowerSweepModern   = power.SweepModern
	// PriceBOM applies the cost model to a bill of materials.
	PriceBOM = cost.Price
)

// Physical packaging layout (§4.2, Figs. 8-9) and wire delay (§5.2).
type (
	// Placement assigns routers to cabinets on a floor plan.
	Placement = layout.Placement
	// FloorPlan arranges cabinets on the machine-room floor.
	FloorPlan = layout.FloorPlan
	// CableStats summarizes measured cable lengths.
	CableStats = layout.CableStats
	// WireDelayComparison is the §5.2 FB-vs-Clos wire-distance study.
	WireDelayComparison = layout.WireDelayComparison
)

var (
	// NewFloorPlan lays out cabinets near-square.
	NewFloorPlan = layout.NewFloorPlan
	// PlaceFlatFly, PlaceFoldedClos, PlaceHypercube and PlaceButterfly
	// package each topology per the paper's Figs. 8-9.
	PlaceFlatFly    = layout.PlaceFlatFly
	PlaceFoldedClos = layout.PlaceFoldedClos
	PlaceHypercube  = layout.PlaceHypercube
	PlaceButterfly  = layout.PlaceButterfly
	// CompareWireDelay runs the §5.2 wire-delay study.
	CompareWireDelay = layout.CompareWireDelay
)

// Closed-form saturation-throughput models, used to validate the
// simulator against channel-load theory.
var (
	// FlatFlyWCMinimal is 1/k (§3.2).
	FlatFlyWCMinimal = analysis.FlatFlyWCMinimal
	// FlatFlyWCNonMinimal is (k-1)/2k.
	FlatFlyWCNonMinimal = analysis.FlatFlyWCNonMinimal
	// FoldedClosURThroughput models the tapered Clos's ~50% cap.
	FoldedClosURThroughput = analysis.FoldedClosURThroughput
	// TorusTornadoThroughput is 1/floor(k/2).
	TorusTornadoThroughput = analysis.TorusTornadoThroughput
	// CreditLimitedChannelRate is min(1, depth/RTT) — the Fig. 12(b)
	// mechanism.
	CreditLimitedChannelRate = analysis.CreditLimitedChannelRate
	// SlimFlyNeighborMinimal is 1/p under the generator-neighbor
	// adversary.
	SlimFlyNeighborMinimal = analysis.SlimFlyNeighborMinimal
	// DragonflyWCMinimal is 1/(a*p); DragonflyWCNonMinimal is h/(2p).
	DragonflyWCMinimal    = analysis.DragonflyWCMinimal
	DragonflyWCNonMinimal = analysis.DragonflyWCNonMinimal
)

// Graph-analytic evaluation (the EvalNet methodology): metrics from the
// channel graph alone — no cycle simulation — so 100k-endpoint design
// points evaluate in milliseconds (flatsim -analytic, sweep mode
// "analytic").
type (
	// AnalyticMetrics is the analytic summary of one topology instance:
	// diameter, average hops, path diversity and bisection bounds.
	AnalyticMetrics = analysis.Metrics
)

var (
	// AnalyzeTopology computes analytic metrics, exploiting router
	// automorphism orbits when the topology exposes them.
	AnalyzeTopology = analysis.AnalyzeTopology
	// AnalyzeGraph computes analytic metrics from any channel graph with
	// a parallel all-sources BFS sweep.
	AnalyzeGraph = analysis.Analyze
)
